"""Tests for the sharded CFCM backend (repro.distributed)."""

import numpy as np
import pytest

from repro import obs
from repro.distributed import (
    ProcessExecutor,
    SerialExecutor,
    ShardedCFCM,
    ThreadExecutor,
    make_executor,
    partition_graph,
)
from repro.dynamic import DynamicCFCM, DynamicGraph
from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.obs.tracing import disable_tracing, enable_tracing
from repro.sampling.pool import WeightedForestPool


def grid(rows=6, cols=8):
    return DynamicGraph(generators.grid_graph(rows, cols))


def dense_reference(graph, group):
    """From-scratch grounded inverse of the current graph state."""
    lap = graph.laplacian_dense()
    grounded = set(graph.compact_nodes(group))
    keep = [i for i in range(graph.n) if i not in grounded]
    inverse = np.linalg.inv(lap[np.ix_(keep, keep)])
    return inverse, {c: i for i, c in enumerate(keep)}


def assert_matches_reference(engine, graph, group, atol=1e-8):
    inverse, position = dense_reference(graph, group)
    cfcc_ref = graph.n / np.trace(inverse)
    assert engine.evaluate_exact(group) == pytest.approx(cfcc_ref, abs=atol)
    grounded = set(group)
    for node in (int(x) for x in graph.node_ids()):
        if node in grounded:
            assert engine.resistance_to_group(node, group) == 0.0
            continue
        ref = inverse[position[graph.compact_index(node)],
                      position[graph.compact_index(node)]]
        assert engine.resistance_to_group(node, group) == pytest.approx(
            ref, abs=atol)


class TestPartition:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_interior_coupling_invariant(self, shards):
        graph = grid()
        part = partition_graph(graph, shards)
        sep = set(part.separator)
        owner = {}
        for index, interior in enumerate(part.parts):
            for node in interior:
                owner[node] = index
        for node, index in owner.items():
            for neighbour in graph.neighbors(node):
                assert neighbour in sep or owner[neighbour] == index
        covered = set(sep) | set(owner)
        assert covered == {int(x) for x in graph.node_ids()}

    def test_parts_balanced_and_separator_small(self):
        graph = grid(10, 10)
        part = partition_graph(graph, 4)
        assert min(len(p) for p in part.parts) > 0
        # Homes (pre-promotion) are what the BFS balances; the greedy cover
        # then bites unevenly into boundary-heavy parts.
        homes = [sum(1 for p in part.home.values() if p == i) for i in range(4)]
        assert max(homes) <= 2 * min(homes)
        assert 0 < len(part.separator) < graph.n // 2

    def test_explicit_seeds_pin_homes(self):
        graph = grid()
        part = partition_graph(graph, 2, seeds=[0, 47])
        assert part.home[0] == 0 and part.home[47] == 1

    def test_invalid_arguments(self):
        graph = grid(2, 2)
        with pytest.raises(InvalidParameterError):
            partition_graph(graph, 5)
        with pytest.raises(InvalidParameterError):
            partition_graph(graph, 2, seeds=[0])
        with pytest.raises(InvalidParameterError):
            partition_graph(graph, 2, seeds=[0, 0])
        with pytest.raises(InvalidParameterError):
            partition_graph(graph, 2, seeds=[0, 99])

    def test_describe(self):
        part = partition_graph(grid(), 3)
        info = part.describe()
        assert info["shards"] == 3
        assert len(info["interior_sizes"]) == 3


class TestExecutors:
    def test_serial_and_thread_preserve_order(self):
        thunks = [(lambda i=i: i * i) for i in range(8)]
        assert SerialExecutor().map(thunks) == [i * i for i in range(8)]
        with ThreadExecutor(workers=3) as pool:
            assert pool.map(thunks) == [i * i for i in range(8)]

    def test_process_executor_falls_back_on_unpicklable(self):
        state = {"x": 3}
        thunks = [(lambda: state["x"]), (lambda: state["x"] + 1)]
        with ProcessExecutor(workers=2) as pool:
            assert pool.map(thunks) == [3, 4]

    def test_make_executor(self):
        assert make_executor("serial").name == "serial"
        assert make_executor("thread").name == "thread"
        serial = SerialExecutor()
        assert make_executor(serial) is serial
        with pytest.raises(InvalidParameterError):
            make_executor("gpu")


class TestShardedCorrectness:
    """Satellite: stitched answers match the dense reference to 1e-8."""

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_mixed_churn_matches_reference(self, backend, shards):
        graph = grid()
        engine = ShardedCFCM(graph, shards=shards, seed=7, backend=backend,
                             coupling="exact")
        group = [0, 27]
        assert_matches_reference(engine, graph, group)

        sep = set(engine.partition.separator)
        edges = list(graph.edges())
        interior = [e for e in edges if e[0] not in sep and e[1] not in sep]
        boundary = [e for e in edges if (e[0] in sep) != (e[1] in sep)]
        through = [e for e in edges if e[0] in sep and e[1] in sep]
        # Mixed churn touching every event class the classifier knows,
        # including cross-shard-boundary reweights and removals.
        for i, (u, v) in enumerate(interior[:5]):
            graph.update_weight(u, v, 1.0 + 0.3 * (i + 1))
        for i, (u, v) in enumerate(boundary[:5]):
            graph.update_weight(u, v, 2.0 + 0.2 * i)
        for u, v in through[:2]:
            graph.update_weight(u, v, 1.7)
        assert_matches_reference(engine, graph, group)

        removed = next((u, v) for u, v in interior[5:]
                       if graph.degree(u) > 1 and graph.degree(v) > 1)
        graph.remove_edge(*removed)
        graph.add_edge(*removed, 0.5)
        assert_matches_reference(engine, graph, group)

    def test_cross_shard_insertion_rebuilds_and_matches(self):
        graph = grid()
        engine = ShardedCFCM(graph, shards=2, seed=11)
        engine.evaluate_exact([0])
        part = engine.partition
        u = part.parts[0][0]
        v = part.parts[1][-1]
        assert not graph.has_edge(u, v)
        graph.add_edge(u, v, 1.0)
        assert_matches_reference(engine, graph, [0])
        assert engine.rebuilds == 1

    def test_node_churn_grows_and_shrinks_separator(self):
        graph = grid()
        engine = ShardedCFCM(graph, shards=3, seed=5)
        group = [4]
        assert_matches_reference(engine, graph, group)
        before = len(engine.partition.separator)

        # A hub wired into several parts must enter (or reshape) the
        # separator; answers stay exact through the structural rebuild.
        spread = [part[0] for part in engine.partition.parts]
        joined = graph.add_node(edges=[(n, 1.0) for n in spread]).node
        assert_matches_reference(engine, graph, group)
        assert engine.rebuilds == 1
        grown = len(engine.partition.separator)
        assert grown != before or engine.partition.is_separator(joined)

        graph.remove_node(joined)
        assert_matches_reference(engine, graph, group)
        assert engine.rebuilds == 2

    def test_group_containing_separator_nodes(self):
        graph = grid()
        engine = ShardedCFCM(graph, shards=3, seed=2)
        separator_node = engine.partition.separator[0]
        group = [separator_node, 1]
        assert_matches_reference(engine, graph, group)
        for u, v in list(graph.edges())[::9]:
            graph.update_weight(u, v, 1.4)
        assert_matches_reference(engine, graph, group)

    def test_executor_modes_agree_bit_for_bit(self):
        values = {}
        for spec in ("serial", "thread"):
            graph = grid()
            engine = ShardedCFCM(graph, shards=4, seed=9, executor=spec)
            engine.evaluate_exact([3])
            for u, v in list(graph.edges())[::5]:
                graph.update_weight(u, v, 1.25)
            values[spec] = (engine.evaluate_exact([3]),
                            engine.resistance_to_group(20, [3]))
            engine.close()
        assert values["serial"] == values["thread"]

    def test_matches_single_tracker_engine(self):
        graph = grid()
        sharded = ShardedCFCM(graph, shards=3, seed=1)
        single = DynamicCFCM(grid(), seed=1)
        group = [0, 33]
        assert sharded.evaluate_exact(group) == pytest.approx(
            single.evaluate_exact(group), abs=1e-9)


class TestQueriesAndEstimator:
    def test_query_agrees_with_single_engine(self):
        graph = grid()
        sharded = ShardedCFCM(graph, shards=3, seed=4)
        single = DynamicCFCM(grid(), seed=4)
        got = sharded.query(3, method="exact")
        want = single.query(3, method="exact")
        assert list(got.group) == list(want.group)
        # Version-keyed cache: a repeat is a hit, a mutation a miss.
        sharded.query(3, method="exact")
        assert sharded.stats.query_hits == 1
        graph.add_edge(0, 9, 1.0)
        sharded.query(3, method="exact")
        assert sharded.stats.query_misses == 2

    def test_forest_estimate_and_merged_ess(self):
        graph = grid()
        engine = ShardedCFCM(graph, shards=3, seed=6, pool_size=32)
        group = [0, 20]
        exact = engine.evaluate_exact(group)
        estimate = engine.evaluate_forest(group)
        assert estimate == pytest.approx(exact, rel=0.15)
        merged = engine.merged_ess()
        assert 0.0 < merged <= 32.0
        assert engine.stats.pool_ess["merged"] == merged
        health = engine.pool_health()
        assert "merged" in health
        assert health["merged"]["ess"] == merged
        assert any(key.startswith("s0:") for key in health)

    def test_weighted_graph_rejects_sampling_paths(self):
        graph = grid()
        graph.update_weight(0, 1, 2.0)
        engine = ShardedCFCM(graph, shards=2, seed=3)
        with pytest.raises(InvalidParameterError):
            engine.evaluate_forest([0])
        with pytest.raises(InvalidParameterError):
            engine.query(2)
        # evaluate_exact stays available on weighted graphs.
        assert engine.evaluate_exact([0]) > 0.0

    def test_evaluate_dispatch(self):
        engine = ShardedCFCM(grid(), shards=2, seed=8)
        assert engine.evaluate([0], mode="exact") == engine.evaluate_exact([0])
        assert engine.evaluate([0], mode="forest") == pytest.approx(
            engine.evaluate_forest([0]))
        with pytest.raises(InvalidParameterError):
            engine.evaluate([0], mode="telepathy")

    def test_constructor_validation(self):
        with pytest.raises(InvalidParameterError):
            ShardedCFCM(grid(), shards=2, coupling="psychic")
        with pytest.raises(InvalidParameterError):
            ShardedCFCM(grid(), shards=0)
        with pytest.raises(InvalidParameterError):
            ShardedCFCM(grid(), executor="gpu")

    def test_describe_and_pending(self):
        graph = grid()
        engine = ShardedCFCM(graph, shards=2, seed=1)
        info = engine.describe()
        assert info["shards"] == 2 and info["executor"] == "serial"
        graph.add_edge(0, 9, 1.0)
        assert engine.pending_events == 1
        engine.sync()
        assert engine.pending_events == 0


class TestShardedObservability:
    def test_metrics_and_spans_emitted(self):
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
        tracer = enable_tracing()
        try:
            graph = grid()
            engine = ShardedCFCM(graph, shards=3, seed=2)
            engine.evaluate_exact([0])
            for u, v in list(graph.edges())[::6]:
                graph.update_weight(u, v, 1.5)
            engine.evaluate_exact([0])
            assert obs.REGISTRY.get("repro_shard_count").value() == 3.0
            assert obs.REGISTRY.get("repro_shard_separator_nodes").value() > 0
            events = obs.REGISTRY.get("repro_shard_events_total")
            assert sum(v for _, v in events.series()) > 0
            sync_hist = obs.REGISTRY.get("repro_shard_sync_seconds")
            assert sync_hist is not None and sync_hist.series()
            names = {span["name"] for span in tracer.spans()}
            assert "shard_sync" in names and "schur_stitch" in names
        finally:
            disable_tracing()
            obs.REGISTRY.reset()
            obs.REGISTRY.disable()

    def test_rebuild_counter_tracks_structural_events(self):
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
        try:
            graph = grid()
            engine = ShardedCFCM(graph, shards=2, seed=2)
            engine.evaluate_exact([0])
            graph.add_node(edges=[(0, 1.0), (1, 1.0)])
            engine.evaluate_exact([0])
            assert engine.rebuilds == 1
            rebuilt = obs.REGISTRY.get("repro_shard_rebuilds_total")
            assert rebuilt.value() >= 1.0
        finally:
            obs.REGISTRY.reset()
            obs.REGISTRY.disable()


class TestAdaptiveFloorSatellites:
    """Satellites: balance-heuristic reweighting and adaptive ESS floors."""

    def test_adaptive_floor_relaxes_under_churn(self):
        pool = WeightedForestPool([0], capacity=16, ess_floor=0.5,
                                  adaptive_floor=True)
        assert pool.effective_floor() == 0.5
        # Sustained staleness mass folds into churn pressure and relaxes
        # the floor toward the 0.25 bench optimum; a static pool keeps it.
        pool._churn_accum = 4.0
        pool.plan_refresh()
        assert pool.effective_floor() < 0.5
        assert pool.effective_floor() >= 0.25
        static = WeightedForestPool([0], capacity=16, ess_floor=0.5)
        static._churn_accum = 4.0
        static.plan_refresh()
        assert static.effective_floor() == 0.5

    def test_floor_gauge_exposed_through_health(self):
        graph = grid()
        engine = ShardedCFCM(graph, shards=2, seed=3, pool_size=8)
        engine.evaluate_forest([0])
        health = engine.pool_health()
        pool_keys = [k for k in health if k != "merged"]
        assert pool_keys
        for key in pool_keys:
            assert "ess_floor" in health[key]
        assert health["merged"]["ess_floor"] <= max(
            health[k]["ess_floor"] for k in pool_keys)

    def test_balance_decay_prices_insertion_resistance(self):
        graph = grid()
        engine = DynamicCFCM(graph, seed=0, pool_size=48)
        group = (0,)
        engine.evaluate_forest(group)
        pool = engine._pools[graph.validate_group(group)]
        u, v = 10, 19
        cu, cv = engine._compact_endpoints(u, v)
        from repro.sampling.pool import edge_inclusion_prior

        prior = edge_inclusion_prior(graph.degree(u), graph.degree(v))
        stale = engine._balance_decay(graph.validate_group(group), pool,
                                      cu, cv, prior)
        # The decay is the importance ratio R/(1+R) of the inserted unit
        # edge; compare against the exact grounded resistance.
        r_uv = (engine.tracker(group).resistance_to_group(u)
                + engine.tracker(group).resistance_to_group(v)
                - 2 * engine.tracker(group).resistance_column(u)[
                    np.searchsorted(engine.tracker(group).kept, v)])
        expected = r_uv / (1.0 + r_uv)
        assert 0.0 < stale <= 0.95
        assert stale == pytest.approx(expected, abs=0.35)
