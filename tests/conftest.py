"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import datasets, generators
from repro.graph.graph import Graph


@pytest.fixture
def path4() -> Graph:
    """Path graph 0-1-2-3."""
    return generators.path_graph(4)


@pytest.fixture
def cycle5() -> Graph:
    """Cycle graph on 5 nodes."""
    return generators.cycle_graph(5)


@pytest.fixture
def star6() -> Graph:
    """Star graph with centre 0 and 5 leaves."""
    return generators.star_graph(6)


@pytest.fixture
def karate() -> Graph:
    """Zachary's karate club graph."""
    return datasets.karate()


@pytest.fixture
def small_ba() -> Graph:
    """Deterministic 60-node Barabási–Albert graph."""
    return generators.barabasi_albert(60, 2, seed=12345)


@pytest.fixture
def medium_ba() -> Graph:
    """Deterministic 200-node Barabási–Albert graph."""
    return generators.barabasi_albert(200, 3, seed=54321)


@pytest.fixture
def grid5x5() -> Graph:
    """5x5 grid graph."""
    return generators.grid_graph(5, 5)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy generator for statistical tests."""
    return np.random.default_rng(2024)
