"""Tests for the CFCM algorithms: exact greedy, ApproxGreedy, ForestCFCM, SchurCFCM."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.graph import datasets
from repro.centrality.api import maximize_cfcc
from repro.centrality.approx_greedy import ApproxGreedy
from repro.centrality.cfcc import group_cfcc
from repro.centrality.estimators import SamplingConfig
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.forest_cfcm import ForestCFCM, forest_delta
from repro.centrality.heuristics import degree_group, top_cfcc_group
from repro.centrality.marginal import marginal_gains_all
from repro.centrality.optimum import optimum_cfcm
from repro.centrality.schur_cfcm import SchurCFCM, choose_extra_roots, schur_delta
from repro.linalg.pseudoinverse import pseudoinverse_diagonal

FAST_CONFIG = SamplingConfig(eps=0.3, max_samples=160, min_samples=16,
                             initial_batch=16, max_jl_dimension=64)


def assert_valid_group(result, graph, k):
    assert len(result.group) == k
    assert len(set(result.group)) == k
    assert all(0 <= v < graph.n for v in result.group)


class TestExactGreedy:
    def test_group_validity(self, karate):
        result = ExactGreedy(karate).run(4)
        assert_valid_group(result, karate, 4)

    def test_first_pick_minimises_pseudoinverse_diagonal(self, karate):
        result = ExactGreedy(karate).run(1)
        diag = pseudoinverse_diagonal(karate)
        assert result.group[0] == int(np.argmin(diag))

    def test_each_pick_maximises_marginal_gain(self, karate):
        result = ExactGreedy(karate).run(3)
        group = [result.group[0]]
        for node in result.group[1:]:
            gains = marginal_gains_all(karate, group)
            best = max(gains.values())
            assert gains[node] == pytest.approx(best, rel=1e-9)
            group.append(node)

    def test_cfcc_monotone_along_prefixes(self, karate):
        result = ExactGreedy(karate).run(5)
        values = [group_cfcc(karate, result.prefix(k)) for k in range(1, 6)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_matches_optimum_on_tiny_graph(self):
        graph = datasets.zebra_substitute()
        greedy = ExactGreedy(graph).run(2)
        best = optimum_cfcm(graph, 2)
        greedy_value = group_cfcc(graph, greedy.group)
        assert greedy_value >= 0.95 * best.cfcc

    def test_invalid_k(self, karate):
        with pytest.raises(InvalidParameterError):
            ExactGreedy(karate).run(0)
        with pytest.raises(InvalidParameterError):
            ExactGreedy(karate).run(karate.n)

    def test_iteration_log(self, karate):
        result = ExactGreedy(karate).run(3)
        assert len(result.iteration_log) == 3
        assert result.iteration_log[0]["iteration"] == 0


class TestApproxGreedy:
    def test_group_validity(self, karate):
        result = ApproxGreedy(karate, eps=0.3, seed=0).run(4)
        assert_valid_group(result, karate, 4)

    def test_close_to_exact(self, small_ba):
        exact_value = group_cfcc(small_ba, ExactGreedy(small_ba).run(4).group)
        approx_value = group_cfcc(small_ba, ApproxGreedy(small_ba, eps=0.2, seed=1).run(4).group)
        assert approx_value >= 0.9 * exact_value

    def test_reproducible(self, karate):
        a = ApproxGreedy(karate, eps=0.3, seed=7).run(3)
        b = ApproxGreedy(karate, eps=0.3, seed=7).run(3)
        assert a.group == b.group

    def test_records_solve_counts(self, karate):
        result = ApproxGreedy(karate, eps=0.3, seed=0).run(2)
        assert all("solves" in entry for entry in result.iteration_log)


class TestForestCFCM:
    def test_group_validity(self, karate):
        result = ForestCFCM(karate, seed=0, config=FAST_CONFIG).run(4)
        assert_valid_group(result, karate, 4)

    def test_close_to_exact(self, small_ba):
        exact_value = group_cfcc(small_ba, ExactGreedy(small_ba).run(4).group)
        forest_value = group_cfcc(
            small_ba, ForestCFCM(small_ba, seed=2, config=FAST_CONFIG).run(4).group
        )
        assert forest_value >= 0.85 * exact_value

    def test_reproducible(self, karate):
        a = ForestCFCM(karate, seed=9, config=FAST_CONFIG).run(3)
        b = ForestCFCM(karate, seed=9, config=FAST_CONFIG).run(3)
        assert a.group == b.group

    def test_samples_recorded(self, karate):
        result = ForestCFCM(karate, seed=0, config=FAST_CONFIG).run(2)
        assert result.samples_used() > 0

    def test_forest_delta_function(self, karate):
        gains = forest_delta(karate, [0], eps=0.3, seed=0,
                             config=FAST_CONFIG)
        assert set(gains) == set(range(1, karate.n))
        assert all(value > 0 for value in gains.values())

    def test_forest_delta_requires_group(self, karate):
        with pytest.raises(InvalidParameterError):
            forest_delta(karate, [], eps=0.3)


class TestSchurCFCM:
    def test_group_validity(self, karate):
        result = SchurCFCM(karate, seed=0, config=FAST_CONFIG).run(4)
        assert_valid_group(result, karate, 4)

    def test_close_to_exact(self, small_ba):
        exact_value = group_cfcc(small_ba, ExactGreedy(small_ba).run(4).group)
        schur_value = group_cfcc(
            small_ba, SchurCFCM(small_ba, seed=3, config=FAST_CONFIG).run(4).group
        )
        assert schur_value >= 0.85 * exact_value

    def test_reproducible(self, karate):
        a = SchurCFCM(karate, seed=4, config=FAST_CONFIG).run(3)
        b = SchurCFCM(karate, seed=4, config=FAST_CONFIG).run(3)
        assert a.group == b.group

    def test_extra_roots_recorded(self, karate):
        result = SchurCFCM(karate, seed=0, config=FAST_CONFIG).run(2)
        assert len(result.parameters["extra_roots"]) >= 1

    def test_explicit_extra_roots(self, karate):
        result = SchurCFCM(karate, seed=0, config=FAST_CONFIG,
                           extra_roots=[33, 0, 2]).run(3)
        assert_valid_group(result, karate, 3)

    def test_schur_delta_function(self, karate):
        gains = schur_delta(karate, [0], [33, 32], eps=0.3, seed=0,
                            config=FAST_CONFIG)
        assert set(gains) == set(range(1, karate.n))

    def test_schur_delta_requires_group(self, karate):
        with pytest.raises(InvalidParameterError):
            schur_delta(karate, [], [33], eps=0.3)

    def test_choose_extra_roots_highest_degree(self, karate):
        roots = choose_extra_roots(karate, size=3)
        top = list(np.argsort(-karate.degrees, kind="stable")[:3])
        assert roots == [int(v) for v in top]

    def test_choose_extra_roots_automatic(self, karate):
        roots = choose_extra_roots(karate)
        assert len(roots) >= 1
        assert len(roots) <= karate.n - 1


class TestHeuristics:
    def test_degree_group_selects_top_degrees(self, karate):
        result = degree_group(karate, 3)
        top = set(int(v) for v in np.argsort(-karate.degrees, kind="stable")[:3])
        assert set(result.group) == top

    def test_top_cfcc_group(self, karate):
        result = top_cfcc_group(karate, 3)
        assert len(result.group) == 3
        # The single most central node must be included.
        from repro.centrality.cfcc import single_cfcc_all

        best = int(np.argmax(single_cfcc_all(karate)))
        assert best in result.group

    def test_heuristics_weaker_than_greedy(self, small_ba):
        """On scale-free graphs the greedy group beats the top-degree group."""
        exact_value = group_cfcc(small_ba, ExactGreedy(small_ba).run(6).group)
        degree_value = group_cfcc(small_ba, degree_group(small_ba, 6).group)
        assert exact_value >= degree_value - 1e-9


class TestOptimum:
    def test_optimum_beats_or_matches_everything(self):
        graph = datasets.zebra_substitute()
        best = optimum_cfcm(graph, 2)
        for method_result in (
            ExactGreedy(graph).run(2),
            degree_group(graph, 2),
            top_cfcc_group(graph, 2),
        ):
            assert best.cfcc >= group_cfcc(graph, method_result.group) - 1e-9

    def test_optimum_k1_matches_single_cfcc(self, karate):
        best = optimum_cfcm(karate, 1)
        from repro.centrality.cfcc import single_cfcc_all

        # Maximising C(S) for |S| = 1 minimises L+_uu, i.e. maximises C(u).
        assert best.group[0] == int(np.argmax(single_cfcc_all(karate)))

    def test_candidate_cap(self, medium_ba):
        with pytest.raises(InvalidParameterError):
            optimum_cfcm(medium_ba, 5, max_candidates=1000)


class TestMaximizeCFCCApi:
    @pytest.mark.parametrize("method", ["exact", "approx", "forest", "schur",
                                        "degree", "top-cfcc"])
    def test_all_methods_dispatch(self, karate, method):
        result = maximize_cfcc(karate, 3, method=method, eps=0.3, seed=0,
                               config=FAST_CONFIG if method in ("forest", "schur") else None)
        assert_valid_group(result, karate, 3)
        assert result.method == method

    def test_optimum_dispatch(self):
        graph = datasets.zebra_substitute()
        result = maximize_cfcc(graph, 2, method="optimum")
        assert result.method == "optimum"
        assert result.cfcc is not None

    def test_unknown_method(self, karate):
        with pytest.raises(InvalidParameterError):
            maximize_cfcc(karate, 2, method="quantum")

    def test_evaluate_flag(self, karate):
        result = maximize_cfcc(karate, 2, method="degree", evaluate=True)
        assert result.cfcc == pytest.approx(group_cfcc(karate, result.group))

    def test_evaluate_estimate_flag(self, karate):
        result = maximize_cfcc(karate, 2, method="degree", evaluate="estimate")
        assert result.cfcc == pytest.approx(group_cfcc(karate, result.group), rel=0.25)


class TestAlgorithmAgreementOnTinyGraphs:
    """Fig. 1-style check: every greedy variant lands near the optimum."""

    @pytest.mark.parametrize("graph_name", ["Zebra*", "Karate"])
    def test_near_optimal(self, graph_name):
        graph = datasets.tiny_suite()[graph_name]
        k = 3
        best = optimum_cfcm(graph, k).cfcc
        for method in ("exact", "approx", "forest", "schur"):
            result = maximize_cfcc(
                graph, k, method=method, eps=0.2, seed=1,
                config=SamplingConfig(eps=0.2, max_samples=256) if method in ("forest", "schur") else None,
            )
            value = group_cfcc(graph, result.group)
            assert value >= 0.9 * best
