"""Tests for the Laplacian pseudoinverse and resistance-distance identities."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import generators
from repro.graph.builders import to_networkx
from repro.linalg.laplacian import laplacian_dense
from repro.linalg.pseudoinverse import (
    effective_resistance_matrix,
    kirchhoff_index,
    laplacian_pseudoinverse,
    pseudoinverse_diagonal,
    pseudoinverse_diagonal_grounded,
    pseudoinverse_entry,
    top_pseudoinverse_nodes,
)


class TestPseudoinverse:
    def test_moore_penrose_identity(self, karate):
        laplacian = laplacian_dense(karate)
        pinv = laplacian_pseudoinverse(karate)
        assert np.allclose(laplacian @ pinv @ laplacian, laplacian, atol=1e-7)
        assert np.allclose(pinv @ laplacian @ pinv, pinv, atol=1e-9)

    def test_symmetry(self, karate):
        pinv = laplacian_pseudoinverse(karate)
        assert np.allclose(pinv, pinv.T)

    def test_row_sums_zero(self, karate):
        pinv = laplacian_pseudoinverse(karate)
        assert np.allclose(pinv.sum(axis=1), 0.0, atol=1e-9)

    def test_matches_numpy_pinv(self, small_ba):
        ours = laplacian_pseudoinverse(small_ba)
        reference = np.linalg.pinv(laplacian_dense(small_ba))
        assert np.allclose(ours, reference, atol=1e-7)

    def test_diagonal_positive(self, karate):
        assert np.all(pseudoinverse_diagonal(karate) > 0)

    def test_entry_helper(self, karate):
        pinv = laplacian_pseudoinverse(karate)
        assert pseudoinverse_entry(karate, 2, 5) == pytest.approx(pinv[2, 5])

    def test_grounded_reformulation_matches(self, karate):
        """Lemma 3.5: L+ diagonal recovered from the grounded inverse."""
        direct = pseudoinverse_diagonal(karate)
        for anchor in (0, 33, 12):
            via_grounded = pseudoinverse_diagonal_grounded(karate, anchor)
            assert np.allclose(via_grounded, direct, atol=1e-8)

    def test_top_nodes_sorted_by_diagonal(self, karate):
        diag = pseudoinverse_diagonal(karate)
        top = top_pseudoinverse_nodes(karate, 3)
        assert list(top) == list(np.argsort(diag, kind="stable")[:3])


class TestResistanceIdentities:
    def test_resistance_matrix_matches_networkx(self, karate):
        ours = effective_resistance_matrix(karate)
        nx_graph = to_networkx(karate)
        for u, v in [(0, 1), (0, 33), (5, 20), (14, 15)]:
            reference = nx.resistance_distance(nx_graph, u, v)
            assert ours[u, v] == pytest.approx(reference, rel=1e-6)

    def test_resistance_matrix_zero_diagonal(self, karate):
        ours = effective_resistance_matrix(karate)
        assert np.allclose(np.diag(ours), 0.0, atol=1e-9)

    def test_path_graph_resistance_is_distance(self):
        path = generators.path_graph(6)
        resistances = effective_resistance_matrix(path)
        for u in range(6):
            for v in range(6):
                assert resistances[u, v] == pytest.approx(abs(u - v), abs=1e-8)

    def test_kirchhoff_index_complete_graph(self):
        # For K_n all pairwise resistances equal 2/n, so Kf = n(n-1)/2 * 2/n = n - 1.
        n = 8
        complete = generators.complete_graph(n)
        total_resistance = effective_resistance_matrix(complete).sum() / 2.0
        assert total_resistance == pytest.approx(n - 1, rel=1e-9)
        assert kirchhoff_index(complete) == pytest.approx(n - 1, rel=1e-9)

    def test_kirchhoff_index_equals_resistance_sum(self, small_ba):
        total_resistance = effective_resistance_matrix(small_ba).sum() / 2.0
        assert kirchhoff_index(small_ba) == pytest.approx(total_resistance, rel=1e-8)
