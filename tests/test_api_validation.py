"""Parameter validation and engine routing of the maximize_cfcc entry point."""

import pytest

import repro
from repro.dynamic import DynamicCFCM, DynamicGraph
from repro.exceptions import InvalidParameterError


class TestKBounds:
    def test_k_at_least_one(self, karate):
        with pytest.raises(InvalidParameterError, match="k must be >= 1"):
            repro.maximize_cfcc(karate, 0, method="degree")

    def test_k_strictly_below_n(self, karate):
        with pytest.raises(InvalidParameterError, match="strict subset"):
            repro.maximize_cfcc(karate, karate.n, method="degree")
        with pytest.raises(InvalidParameterError, match="strict subset"):
            repro.maximize_cfcc(karate, karate.n + 5, method="exact")

    def test_k_must_be_integer(self, karate):
        with pytest.raises(InvalidParameterError, match="integer"):
            repro.maximize_cfcc(karate, 2.5, method="degree")

    def test_valid_boundary_k_accepted(self, path4):
        result = repro.maximize_cfcc(path4, path4.n - 1, method="degree")
        assert result.k == path4.n - 1


class TestEpsBounds:
    @pytest.mark.parametrize("eps", [0.0, -0.2, 1.0, 1.5])
    @pytest.mark.parametrize("method", ["schur", "forest", "approx"])
    def test_invalid_eps_rejected_for_sampling_methods(self, karate, method, eps):
        with pytest.raises(InvalidParameterError, match="eps must lie in"):
            repro.maximize_cfcc(karate, 2, method=method, eps=eps)

    def test_eps_ignored_for_deterministic_methods(self, karate):
        result = repro.maximize_cfcc(karate, 2, method="degree", eps=-1.0)
        assert result.k == 2

    def test_config_overrides_eps_validation(self, karate):
        config = repro.SamplingConfig(eps=0.3, max_samples=16)
        result = repro.maximize_cfcc(karate, 2, method="forest", eps=-1.0,
                                     seed=0, config=config)
        assert result.k == 2


class TestEngineRouting:
    def test_engine_parameter_routes_through_cache(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        first = repro.maximize_cfcc(small_ba, 3, method="exact", engine=engine)
        second = repro.maximize_cfcc(small_ba, 3, method="exact", engine=engine)
        assert second is first
        assert engine.stats.query_hits == 1

    def test_engine_with_graph_none(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        result = repro.maximize_cfcc(None, 2, method="degree", engine=engine)
        assert result.k == 2

    def test_engine_validates_bounds_before_dispatch(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        with pytest.raises(InvalidParameterError):
            repro.maximize_cfcc(None, small_ba.n, method="degree", engine=engine)

    def test_engine_rejects_conflicting_arguments(self, small_ba, karate):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        with pytest.raises(InvalidParameterError, match="engine owns"):
            repro.maximize_cfcc(None, 2, method="schur", seed=42, engine=engine)
        with pytest.raises(InvalidParameterError, match="engine owns"):
            repro.maximize_cfcc(None, 2, method="schur", engine=engine,
                                config=repro.SamplingConfig(eps=0.3))
        with pytest.raises(InvalidParameterError, match="engine owns"):
            repro.maximize_cfcc(None, 2, method="schur", engine=engine,
                                extra_roots=[5])
        with pytest.raises(InvalidParameterError, match="does not match"):
            repro.maximize_cfcc(karate, 2, method="degree", engine=engine)

    def test_engine_accepts_its_own_dynamic_graph(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        result = repro.maximize_cfcc(engine.graph, 2, method="degree",
                                     engine=engine)
        assert result.k == 2

    def test_graph_none_without_engine_rejected(self):
        with pytest.raises(InvalidParameterError, match="graph is required"):
            repro.maximize_cfcc(None, 3, method="degree")

    def test_weighted_dynamic_graph_rejected_directly(self, karate):
        graph = DynamicGraph(karate)
        graph.update_weight(0, 1, 2.0)
        with pytest.raises(InvalidParameterError, match="unit edge weights"):
            repro.maximize_cfcc(graph, 2, method="exact")

    def test_dynamic_graph_accepted_directly(self, small_ba):
        graph = DynamicGraph(small_ba)
        if not graph.has_edge(0, small_ba.n - 1):
            graph.add_edge(0, small_ba.n - 1)
        result = repro.maximize_cfcc(graph, 2, method="degree")
        assert result.k == 2
