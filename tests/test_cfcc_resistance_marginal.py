"""Tests for exact CFCC, resistance distances and marginal gains."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DisconnectedGraphError, InvalidParameterError
from repro.graph import generators
from repro.graph.builders import to_networkx
from repro.graph.graph import Graph
from repro.centrality.cfcc import (
    group_cfcc,
    group_cfcc_estimate,
    group_cfcc_solver,
    grounded_trace,
    single_cfcc,
    single_cfcc_all,
)
from repro.centrality.marginal import (
    first_pick_objective,
    marginal_gain,
    marginal_gains_all,
    trace_drop,
)
from repro.centrality.resistance import (
    resistance_distance,
    resistance_matrix,
    resistance_to_group,
    total_group_resistance,
)


class TestResistance:
    def test_matches_networkx(self, karate):
        nx_graph = to_networkx(karate)
        for u, v in [(0, 33), (1, 2), (13, 26)]:
            assert resistance_distance(karate, u, v) == pytest.approx(
                nx.resistance_distance(nx_graph, u, v), rel=1e-6
            )

    def test_zero_on_diagonal(self, karate):
        assert resistance_distance(karate, 7, 7) == 0.0

    def test_symmetry(self, karate):
        assert resistance_distance(karate, 3, 19) == pytest.approx(
            resistance_distance(karate, 19, 3)
        )

    def test_resistance_at_most_shortest_path(self, karate):
        """Effective resistance is upper-bounded by the shortest-path distance."""
        nx_graph = to_networkx(karate)
        for u, v in [(0, 33), (5, 25), (14, 16)]:
            assert resistance_distance(karate, u, v) <= (
                nx.shortest_path_length(nx_graph, u, v) + 1e-9
            )

    def test_group_resistance_member_is_zero(self, karate):
        assert resistance_to_group(karate, 4, [4, 7]) == 0.0

    def test_group_resistance_decreases_with_larger_group(self, karate):
        single = resistance_to_group(karate, 20, [0])
        double = resistance_to_group(karate, 20, [0, 33])
        assert double < single

    def test_group_resistance_single_matches_pairwise(self, karate):
        assert resistance_to_group(karate, 12, [3]) == pytest.approx(
            resistance_distance(karate, 12, 3), rel=1e-9
        )

    def test_total_group_resistance_is_trace(self, karate):
        assert total_group_resistance(karate, [0, 5]) == pytest.approx(
            grounded_trace(karate, [0, 5]), rel=1e-12
        )

    def test_disconnected_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            resistance_distance(graph, 0, 2)

    def test_resistance_matrix_consistent(self, small_ba):
        matrix = resistance_matrix(small_ba)
        assert matrix[4, 9] == pytest.approx(resistance_distance(small_ba, 4, 9))


class TestSingleCFCC:
    def test_matches_networkx_information_centrality(self, karate):
        """Single-node CFCC equals networkx's information centrality up to the
        paper's factor n (networkx normalises by 1/sum R(u, v), the paper by
        n/sum R(u, v))."""
        reference = nx.information_centrality(to_networkx(karate))
        ours = single_cfcc_all(karate)
        for node, value in reference.items():
            assert ours[node] == pytest.approx(value * karate.n, rel=1e-6)

    def test_single_matches_vectorised(self, karate):
        values = single_cfcc_all(karate)
        for node in (0, 15, 33):
            assert single_cfcc(karate, node) == pytest.approx(values[node])

    def test_hub_more_central_than_leaf(self, star6):
        values = single_cfcc_all(star6)
        assert values[0] > values[1]


class TestGroupCFCC:
    def test_definition(self, karate):
        group = [0, 33]
        assert group_cfcc(karate, group) == pytest.approx(
            karate.n / grounded_trace(karate, group)
        )

    def test_monotone_in_group(self, karate):
        assert group_cfcc(karate, [0, 33]) > group_cfcc(karate, [0])

    def test_solver_route_matches_dense(self, karate):
        group = [2, 8, 30]
        assert group_cfcc_solver(karate, group) == pytest.approx(
            group_cfcc(karate, group), rel=1e-8
        )

    def test_estimate_route_close(self, medium_ba):
        group = [0, 1, 2]
        estimate = group_cfcc_estimate(medium_ba, group, probes=256, seed=0)
        assert estimate == pytest.approx(group_cfcc(medium_ba, group), rel=0.15)

    def test_group_validation(self, karate):
        with pytest.raises(InvalidParameterError):
            group_cfcc(karate, [])
        with pytest.raises(InvalidParameterError):
            group_cfcc(karate, list(range(karate.n)))

    def test_star_centre_is_best_group_of_one(self, star6):
        centre = group_cfcc(star6, [0])
        leaf = group_cfcc(star6, [3])
        assert centre > leaf


class TestMarginalGains:
    def test_gain_equals_trace_drop(self, karate):
        """Eq. (5): the closed form equals the direct trace difference."""
        group = [0]
        for node in (5, 12, 33):
            assert marginal_gain(karate, node, group) == pytest.approx(
                trace_drop(karate, node, group), rel=1e-8
            )

    def test_gains_all_matches_individual(self, karate):
        group = [3, 8]
        gains = marginal_gains_all(karate, group)
        for node in (0, 20, 33):
            assert gains[node] == pytest.approx(marginal_gain(karate, node, group))

    def test_gains_positive(self, karate):
        gains = marginal_gains_all(karate, [0])
        assert all(value > 0 for value in gains.values())

    def test_member_rejected(self, karate):
        with pytest.raises(ValueError):
            marginal_gain(karate, 0, [0])

    def test_supermodularity_of_trace(self, karate):
        """Marginal gains shrink as the group grows (diminishing returns)."""
        small_group = [0]
        large_group = [0, 33, 2]
        gains_small = marginal_gains_all(karate, small_group)
        gains_large = marginal_gains_all(karate, large_group)
        for node in gains_large:
            assert gains_large[node] <= gains_small[node] + 1e-9

    def test_first_pick_objective_formula(self, karate):
        """Eq. (4): Tr(L+) + n L+_uu equals the sum of resistances from u."""
        objective = first_pick_objective(karate)
        matrix = resistance_matrix(karate)
        for node in (0, 17, 33):
            assert objective[node] == pytest.approx(matrix[node].sum(), rel=1e-8)


class TestCFCMonotonicityProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=8, max_value=40), st.integers(min_value=0, max_value=100))
    def test_adding_any_node_increases_cfcc(self, n, seed):
        graph = generators.barabasi_albert(n, 2, seed=seed)
        rng = np.random.default_rng(seed)
        base = sorted(int(v) for v in rng.choice(n, size=2, replace=False))
        candidates = [v for v in range(n) if v not in base]
        extra = int(rng.choice(candidates))
        assert group_cfcc(graph, base + [extra]) > group_cfcc(graph, base)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=6, max_value=30), st.integers(min_value=0, max_value=100))
    def test_resistance_triangle_inequality(self, n, seed):
        graph = generators.barabasi_albert(n, 2, seed=seed)
        matrix = resistance_matrix(graph)
        rng = np.random.default_rng(seed)
        nodes = rng.choice(n, size=3, replace=False)
        a, b, c = (int(v) for v in nodes)
        assert matrix[a, c] <= matrix[a, b] + matrix[b, c] + 1e-9
