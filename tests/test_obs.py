"""Tests for the unified observability layer (`repro.obs`).

Covers the metrics registry (get-or-create semantics, thread safety under
both raw threads and the async service's worker pool, snapshot/Prometheus
exposition round-trip), span tracing (nesting, thread isolation, pipeline
reconstruction from a churn run), the health bindings, the Timer shim, the
``ServiceResponse.stats`` aliasing regression, and the disabled-mode
overhead bound on the bench-smoke sampling config.
"""

import asyncio
import gc
import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.dynamic import (
    DynamicCFCM,
    DynamicGraph,
    poisson_traffic,
    random_update_journal,
)
from repro.graph import generators
from repro.obs import (
    Histogram,
    MetricError,
    MetricsRegistry,
    bind_engine_health,
    trace,
)
from repro.obs.metrics import LATENCY_BUCKETS, SIZE_BUCKETS
from repro.sampling import sample_forest_batch_vectorized
from repro.service import AsyncCFCMService
from repro.utils.timer import Timer, clock, timed

GROUP = (0, 1, 2)


@pytest.fixture
def registry():
    """A fresh, enabled default registry; prior state restored afterwards."""
    was_enabled = obs.REGISTRY.enabled
    obs.REGISTRY.reset()
    obs.REGISTRY.enable()
    yield obs.REGISTRY
    obs.REGISTRY.reset()
    if not was_enabled:
        obs.REGISTRY.disable()


@pytest.fixture
def fresh():
    """A standalone registry (no global state involved)."""
    return MetricsRegistry(enabled=True)


# --------------------------------------------------------------------------
# Metrics registry
# --------------------------------------------------------------------------

class TestRegistry:
    def test_get_or_create_returns_same_object(self, fresh):
        first = fresh.counter("c_total", help="h")
        assert fresh.counter("c_total") is first
        assert fresh.get("c_total") is first
        assert fresh.get("missing") is None

    def test_kind_and_label_collisions_raise(self, fresh):
        fresh.counter("c_total")
        with pytest.raises(MetricError):
            fresh.gauge("c_total")
        fresh.histogram("h_seconds", labels=("op",))
        with pytest.raises(MetricError):
            fresh.histogram("h_seconds", labels=("other",))

    def test_disabled_counter_and_histogram_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        histogram = registry.histogram("h_seconds")
        counter.inc()
        histogram.observe(0.5)
        assert counter.value() == 0.0
        assert histogram.count() == 0
        # Gauges apply even while disabled: collectors write them at
        # exposition time, which is always an explicit request.
        gauge = registry.gauge("g")
        gauge.set(7.0)
        assert gauge.value() == 7.0

    def test_counter_rejects_negative_and_unknown_labels(self, fresh):
        counter = fresh.counter("c_total")
        with pytest.raises(MetricError):
            counter.inc(-1.0)
        with pytest.raises(MetricError):
            counter.inc(1.0, pool="a")
        labelled = fresh.counter("l_total", labels=("pool",))
        with pytest.raises(MetricError):
            labelled.inc()

    def test_reset_keeps_objects_and_zeroes_values(self, fresh):
        counter = fresh.counter("c_total")
        counter.inc(3)
        fresh.reset()
        assert fresh.counter("c_total") is counter
        assert counter.value() == 0.0

    def test_thread_safety_exact_totals(self, fresh):
        counter = fresh.counter("c_total", labels=("worker",))
        histogram = fresh.histogram("h_seconds")
        threads, per_thread = 8, 2000

        def hammer(worker):
            for _ in range(per_thread):
                counter.inc(worker=worker % 2)
                histogram.observe(1e-3)

        pool = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value(worker=0) + counter.value(worker=1) \
            == threads * per_thread
        assert histogram.count() == threads * per_thread
        assert histogram.sum() == pytest.approx(threads * per_thread * 1e-3)


class TestHistogram:
    def test_percentiles_ordered_and_clamped(self, fresh):
        histogram = fresh.histogram("h_seconds")
        values = [i * 1e-3 for i in range(1, 101)]
        for value in values:
            histogram.observe(value)
        p50 = histogram.percentile(50)
        p95 = histogram.percentile(95)
        p99 = histogram.percentile(99)
        assert min(values) <= p50 <= p95 <= p99 <= max(values)
        assert histogram.percentile(0) == pytest.approx(min(values))
        assert histogram.percentile(100) == pytest.approx(max(values))
        assert histogram.count() == 100
        assert histogram.sum() == pytest.approx(sum(values))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(p50)
        with pytest.raises(MetricError):
            histogram.percentile(101)

    def test_empty_histogram_percentile_is_zero(self, fresh):
        assert fresh.histogram("h_seconds").percentile(99) == 0.0

    def test_labelled_aggregate_view(self, fresh):
        histogram = fresh.histogram("h_seconds", labels=("kind",))
        histogram.observe(0.001, kind="query")
        histogram.observe(0.1, kind="update")
        assert histogram.count(kind="query") == 1
        # No labels on a labelled histogram: the merged view of all series.
        assert histogram.count() == 2
        assert histogram.sum() == pytest.approx(0.101)

    def test_merge_requires_matching_buckets_and_labels(self, fresh):
        a = fresh.histogram("a_seconds", buckets=LATENCY_BUCKETS)
        b = Histogram("b_seconds", buckets=LATENCY_BUCKETS)
        b.observe(0.01)
        b.observe(0.02)
        a.observe(0.04)
        a.merge(b)
        assert a.count() == 3
        assert a.sum() == pytest.approx(0.07)
        sized = Histogram("sizes", buckets=SIZE_BUCKETS)
        with pytest.raises(MetricError):
            a.merge(sized)
        labelled = Histogram("lab", buckets=LATENCY_BUCKETS, labels=("x",))
        with pytest.raises(MetricError):
            a.merge(labelled)


class TestExposition:
    def test_snapshot_and_prometheus_round_trip(self, fresh):
        counter = fresh.counter("repro_test_total", help="a counter",
                                labels=("op",))
        counter.inc(3, op="query")
        counter.inc(2, op="update")
        histogram = fresh.histogram("repro_test_seconds", help="a histogram")
        for value in (0.003, 0.004, 0.2):
            histogram.observe(value)
        fresh.gauge("repro_test_depth").set(5)

        snapshot = fresh.snapshot()
        assert snapshot["repro_test_total"]["type"] == "counter"
        by_labels = {tuple(sorted(item["labels"].items())): item["value"]
                     for item in snapshot["repro_test_total"]["series"]}
        assert by_labels[(("op", "query"),)] == 3.0
        hist_series = snapshot["repro_test_seconds"]["series"][0]
        assert hist_series["count"] == 3
        assert hist_series["sum"] == pytest.approx(0.207)
        assert "p99" in hist_series and "buckets" in hist_series

        text = fresh.render_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_test_total counter" in lines
        assert "# TYPE repro_test_seconds histogram" in lines
        assert 'repro_test_total{op="query"} 3' in lines
        assert "repro_test_depth 5" in lines
        # The +Inf cumulative bucket must equal the exact count, and the
        # sum/count side-cars must round-trip against the snapshot.
        assert 'repro_test_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_test_seconds_count 3" in lines
        sum_line = next(l for l in lines if l.startswith("repro_test_seconds_sum"))
        assert float(sum_line.split()[-1]) == pytest.approx(0.207)

    def test_snapshot_returns_fresh_containers(self, fresh):
        counter = fresh.counter("repro_test_total")
        counter.inc()
        snapshot = fresh.snapshot()
        snapshot["repro_test_total"]["series"][0]["value"] = 99.0
        assert fresh.snapshot()["repro_test_total"]["series"][0]["value"] == 1.0

    def test_collector_runs_at_exposition_and_unregisters(self, fresh):
        gauge = fresh.gauge("repro_test_live")
        calls = []

        def collect(reg):
            calls.append(reg)
            gauge.set(len(calls))

        unregister = fresh.register_collector(collect)
        fresh.snapshot()
        fresh.render_prometheus()
        assert len(calls) == 2
        unregister()
        unregister()  # idempotent
        fresh.snapshot()
        assert len(calls) == 2


# --------------------------------------------------------------------------
# Span tracing
# --------------------------------------------------------------------------

class TestTracing:
    def test_trace_is_noop_without_tracer(self):
        obs.disable_tracing()
        span = trace("anything", size=1)
        assert span is obs.NOOP_SPAN
        with span as inner:
            inner.set(more=2)

    def test_span_nesting_links_parent_and_depth(self):
        tracer = obs.enable_tracing()
        try:
            with trace("outer") as outer:
                with trace("inner", size=4) as inner:
                    inner.set(hit=True)
            with trace("sibling"):
                pass
        finally:
            obs.disable_tracing()
        spans = tracer.spans()
        by_name = {span["name"]: span for span in spans}
        # Children record before parents (exit order).
        assert [span["name"] for span in spans] == ["inner", "outer", "sibling"]
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner"]["attrs"] == {"size": 4, "hit": True}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["sibling"]["parent_id"] is None
        assert all(span["elapsed"] >= 0.0 for span in spans)

    def test_span_records_error_attribute(self):
        tracer = obs.enable_tracing()
        try:
            with pytest.raises(RuntimeError):
                with trace("failing"):
                    raise RuntimeError("boom")
        finally:
            obs.disable_tracing()
        (span,) = tracer.spans()
        assert span["attrs"]["error"] == "RuntimeError"

    def test_span_stacks_are_thread_local(self):
        tracer = obs.enable_tracing()
        try:
            started = threading.Event()
            release = threading.Event()

            def worker():
                with trace("worker-span"):
                    started.set()
                    release.wait(timeout=5.0)

            thread = threading.Thread(target=worker)
            with trace("main-span"):
                thread.start()
                assert started.wait(timeout=5.0)
                release.set()
                thread.join()
        finally:
            obs.disable_tracing()
        by_name = {span["name"]: span for span in tracer.spans()}
        # Concurrent spans on different threads must not parent each other.
        assert by_name["worker-span"]["parent_id"] is None
        assert by_name["main-span"]["parent_id"] is None
        assert by_name["worker-span"]["thread"] != by_name["main-span"]["thread"]

    def test_ring_buffer_keeps_newest(self):
        tracer = obs.enable_tracing(capacity=4)
        try:
            for index in range(10):
                with trace(f"span-{index}"):
                    pass
        finally:
            obs.disable_tracing()
        names = [span["name"] for span in tracer.spans()]
        assert names == ["span-6", "span-7", "span-8", "span-9"]

    def test_pipeline_trace_reconstruction(self, registry, tmp_path):
        """A churn round's JSONL trace reconstructs update → sync →
        reweight → top-up → lockstep → fold with correct parentage."""
        path = tmp_path / "trace.jsonl"
        tracer = obs.enable_tracing(jsonl_path=str(path))
        try:
            graph = DynamicGraph(generators.barabasi_albert(60, 2, seed=3))
            engine = DynamicCFCM(graph, seed=0, pool_size=8)
            engine.evaluate_forest(GROUP)
            rng = np.random.default_rng(0)
            random_update_journal(graph, 4, rng)
            engine.evaluate_forest(GROUP)
        finally:
            obs.disable_tracing()
        spans = tracer.spans()
        names = {span["name"] for span in spans}
        assert {"engine.evaluate_forest", "engine.sync_pools", "pool.reweight",
                "pool.topup", "sampling.lockstep", "estimator.fold"} <= names

        by_id = {span["span_id"]: span for span in spans}
        for span in spans:
            parent_id = span["parent_id"]
            if parent_id is not None:
                assert by_id[parent_id]["depth"] == span["depth"] - 1

        def parent_name(name):
            span = next(s for s in spans if s["name"] == name)
            return by_id[span["parent_id"]]["name"]

        assert parent_name("pool.reweight") == "engine.sync_pools"
        assert parent_name("engine.sync_pools") == "engine.evaluate_forest"
        assert parent_name("sampling.lockstep") == "pool.topup"
        assert parent_name("pool.topup") == "engine.evaluate_forest"

        # The JSONL mirror carries the same spans in the same order.
        records = [json.loads(line)
                   for line in path.read_text(encoding="utf-8").splitlines()]
        assert [r["span_id"] for r in records] == [s["span_id"] for s in spans]


# --------------------------------------------------------------------------
# Health bindings
# --------------------------------------------------------------------------

class TestHealth:
    def test_engine_health_gauges_and_pool_series(self, registry):
        graph = DynamicGraph(generators.barabasi_albert(40, 2, seed=1))
        engine = DynamicCFCM(graph, seed=0, pool_size=8)
        unbind = bind_engine_health(engine)
        try:
            engine.evaluate_forest(GROUP)
            engine.query(2, method="exact", eps=0.3)
            snapshot = obs.snapshot()
            assert snapshot["repro_engine_query_misses"]["series"][0]["value"] == 1.0
            pool_series = snapshot["repro_pool_ess"]["series"]
            assert len(pool_series) == 1
            assert set(pool_series[0]["labels"]) == {"pool"}
            assert pool_series[0]["value"] > 0.0
            text = obs.render_prometheus()
            assert "repro_engine_query_hit_rate" in text
            assert "repro_pool_ess{" in text
        finally:
            unbind()
        unbind()  # idempotent

    def test_dead_engine_collector_self_unregisters(self, registry):
        graph = DynamicGraph(generators.barabasi_albert(30, 2, seed=2))
        engine = DynamicCFCM(graph, seed=0)
        bind_engine_health(engine)
        obs.snapshot()
        del engine, graph
        gc.collect()
        # Exposition after the engine died must not raise; the weakref
        # collector drops itself on its next run.
        obs.snapshot()
        obs.render_prometheus()


# --------------------------------------------------------------------------
# Async service: worker-pool thread safety + stats aliasing regression
# --------------------------------------------------------------------------

class TestServiceObservability:
    def test_registry_consistent_under_worker_pool(self, registry):
        base = generators.barabasi_albert(40, 2, seed=5)

        async def scenario():
            async with AsyncCFCMService(base, seed=0, workers=2) as service:
                return await poisson_traffic(
                    service, 60, rng=0, rate=2000.0, query_fraction=0.5,
                    monitor_group=GROUP, evaluate_fraction=0.5,
                    method="exact", k=len(GROUP))

        report = asyncio.run(scenario())
        request_seconds = registry.get("repro_service_request_seconds")
        assert request_seconds.count(kind="query") == report.queries
        assert request_seconds.count(kind="evaluate") == report.evaluations
        batch_sizes = registry.get("repro_service_update_batch_size")
        # Every journal event passes through exactly one coalesced batch.
        assert batch_sizes.sum() == pytest.approx(
            report.updates_applied + report.updates_failed)

    def test_service_response_stats_do_not_alias_pool_ess(self):
        base = generators.barabasi_albert(40, 2, seed=5)

        async def scenario():
            async with AsyncCFCMService(base, seed=0) as service:
                first = await service.evaluate(GROUP, mode="forest")
                before = dict(first.stats["pool_ess"])
                assert before  # the forest pool published its ESS
                # Later activity on a *different* pool must not leak into
                # the already-returned snapshot.
                await service.evaluate((0, 1), mode="forest")
                assert first.stats["pool_ess"] == before
                # Nor may mutating the snapshot corrupt live engine state.
                first.stats["pool_ess"]["bogus"] = -1.0
                assert "bogus" not in service.engine.stats.pool_ess

        asyncio.run(scenario())

    def test_engine_stats_as_dict_deep_copies_pool_ess(self):
        graph = DynamicGraph(generators.barabasi_albert(40, 2, seed=1))
        engine = DynamicCFCM(graph, seed=0, pool_size=8)
        engine.evaluate_forest(GROUP)
        snapshot = engine.stats.as_dict()
        before = dict(snapshot["pool_ess"])
        engine.evaluate_forest((0, 1))
        assert snapshot["pool_ess"] == before
        assert len(engine.stats.pool_ess) == 2


# --------------------------------------------------------------------------
# Timer shim
# --------------------------------------------------------------------------

class TestTimer:
    def test_percentile_tracks_records(self):
        timer = Timer()
        for value in (0.001, 0.002, 0.004, 0.2):
            timer.record("op", value)
        p50 = timer.percentile("op", 50)
        p99 = timer.percentile("op", 99)
        assert 0.001 <= p50 <= p99 <= 0.2
        assert timer.percentile("unknown", 99) == 0.0
        assert timer.count("op") == 4
        assert timer.total("op") == pytest.approx(0.207)

    def test_merge_combines_records_and_histograms(self):
        ours, theirs = Timer(), Timer()
        ours.record("op", 0.001)
        theirs.record("op", 0.1)
        theirs.record("other", 0.01)
        assert ours.merge(theirs) is ours
        assert ours.count("op") == 2
        assert ours.total("other") == pytest.approx(0.01)
        assert ours.percentile("op", 100) == pytest.approx(0.1)

    def test_measure_records_through_clock(self):
        timer = Timer()
        with timer.measure("phase"):
            pass
        assert timer.count("phase") == 1
        assert timer.percentile("phase", 50) >= 0.0

    def test_timed_is_deprecated(self):
        with pytest.warns(DeprecationWarning):
            with timed() as elapsed:
                pass
        assert elapsed[0] >= 0.0


# --------------------------------------------------------------------------
# Disabled-mode overhead bound (bench-smoke config)
# --------------------------------------------------------------------------

def test_disabled_mode_overhead_bounded_on_bench_smoke_config():
    """Disabled hooks must stay under 5% of the hot path they instrument.

    The bench-smoke sampling config (n=1000 hub-rooted lockstep batch of 64)
    is the hot path; the instrumented code performs a handful of hook calls
    per batch (one histogram observation, a counter increment per chunk, one
    no-op span).  We charge 200 full hook triples — well over an order of
    magnitude more than the real path executes — and require their disabled
    cost to stay under 5% of one batch draw.
    """
    obs.disable_tracing()
    graph = generators.barabasi_albert(1000, 3, seed=0)
    roots = sorted(int(v) for v in np.argsort(-graph.degrees)[:4])
    sample_forest_batch_vectorized(graph, roots, 64, seed=0)  # warm caches
    hot = min(_timed_draw(graph, roots) for _ in range(3))

    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("probe_total")
    histogram = registry.histogram("probe_seconds")

    def probe_loop():
        start = clock()
        for _ in range(200):
            counter.inc()
            histogram.observe(1e-3)
            with trace("probe"):
                pass
        return clock() - start

    overhead = min(probe_loop() for _ in range(3))
    assert counter.value() == 0.0  # genuinely disabled
    assert overhead < 0.05 * hot, (
        f"disabled-mode hooks cost {overhead * 1e3:.3f}ms against a "
        f"{hot * 1e3:.3f}ms hot path (>= 5%)")


def _timed_draw(graph, roots):
    start = clock()
    sample_forest_batch_vectorized(graph, roots, 64, seed=0)
    return clock() - start
