"""Tests for the core :class:`repro.Graph` data structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError, InvalidNodeError
from repro.graph.graph import Graph, degree_sequence
from repro.graph import generators


class TestConstruction:
    def test_basic_counts(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.n == 4
        assert graph.m == 3
        assert len(graph) == 4

    def test_aliases(self):
        graph = Graph(3, [(0, 1)])
        assert graph.number_of_nodes == 3
        assert graph.number_of_edges == 1

    def test_isolated_nodes_allowed(self):
        graph = Graph(5, [(0, 1)])
        assert graph.degree(4) == 0

    def test_empty_edge_list(self):
        graph = Graph(3, [])
        assert graph.m == 0
        assert list(graph.edges()) == []

    def test_rejects_zero_nodes(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_rejects_parallel_edges(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])

    def test_rejects_negative_endpoint(self):
        with pytest.raises(GraphError):
            Graph(3, [(-1, 2)])

    def test_rejects_malformed_edges(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1, 2)])

    def test_edge_orientation_normalised(self):
        graph = Graph(3, [(2, 0), (2, 1)])
        assert list(graph.edges()) == [(0, 2), (1, 2)]


class TestAccessors:
    def test_degrees(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1
        assert graph.degrees.tolist() == [3, 1, 1, 1]

    def test_neighbors_sorted_content(self):
        graph = Graph(4, [(0, 3), (0, 1), (0, 2)])
        assert sorted(graph.neighbors(0).tolist()) == [1, 2, 3]
        assert graph.neighbors(2).tolist() == [0]

    def test_has_edge(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(1, 1)

    def test_invalid_node_raises(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(InvalidNodeError):
            graph.degree(3)
        with pytest.raises(InvalidNodeError):
            graph.neighbors(-1)

    def test_nodes_array(self):
        graph = Graph(3, [(0, 1)])
        assert graph.nodes().tolist() == [0, 1, 2]

    def test_edge_array_shape(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.edge_array().shape == (3, 2)

    def test_max_degree(self, star6):
        assert star6.max_degree() == 5

    def test_max_degree_excluding_hub(self, star6):
        assert star6.max_degree(excluded=[0]) == 0

    def test_max_degree_excluding_leaf(self, star6):
        assert star6.max_degree(excluded=[1]) == 4

    def test_adjacency_lists_cached(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        first = graph.adjacency_lists()
        second = graph.adjacency_lists()
        assert first[0] is second[0]
        assert first[1] == graph.adjacency.tolist()


class TestPositions:
    def test_reverse_position_involution(self, karate):
        for position in range(2 * karate.m):
            other = karate.reverse_position(position)
            assert karate.reverse_position(other) == position
            assert karate.position_edge_id(position) == karate.position_edge_id(other)

    def test_position_head_matches_adjacency(self, karate):
        for node in range(karate.n):
            for position in karate.neighbor_positions(node):
                assert karate.position_head(int(position)) == karate.adjacency[position]


class TestMatrices:
    def test_adjacency_matrix_symmetric(self, karate):
        adjacency = karate.adjacency_matrix().toarray()
        assert np.allclose(adjacency, adjacency.T)
        assert adjacency.sum() == 2 * karate.m

    def test_degree_matrix_diagonal(self, karate):
        degree = karate.degree_matrix().toarray()
        assert np.allclose(np.diag(degree), karate.degrees)
        assert np.allclose(degree - np.diag(np.diag(degree)), 0.0)


class TestSubgraph:
    def test_induced_subgraph(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub, mapping = graph.subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.m == 2
        assert mapping.tolist() == [0, 1, 2]

    def test_subgraph_relabels(self):
        graph = Graph(5, [(2, 3), (3, 4)])
        sub, mapping = graph.subgraph([2, 3, 4])
        assert sub.n == 3
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]
        assert mapping.tolist() == [2, 3, 4]

    def test_subgraph_invalid_node(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(InvalidNodeError):
            graph.subgraph([0, 5])


class TestEquality:
    def test_equal_graphs(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(0, 2)])
        assert a != b

    def test_not_equal_to_other_types(self):
        assert Graph(2, [(0, 1)]) != "graph"


class TestDegreeSequence:
    def test_degree_sequence_sorted(self, star6):
        assert degree_sequence(star6) == [5, 1, 1, 1, 1, 1]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=200))
def test_handshake_lemma(n, seed):
    """Sum of degrees equals twice the edge count for arbitrary random graphs."""
    rng = np.random.default_rng(seed)
    edges = set()
    for _ in range(rng.integers(0, 3 * n)):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    graph = Graph(n, sorted(edges))
    assert int(graph.degrees.sum()) == 2 * graph.m


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=40))
def test_complete_graph_degrees(n):
    graph = generators.complete_graph(n)
    assert graph.m == n * (n - 1) // 2
    assert all(graph.degree(v) == n - 1 for v in range(n))
