"""Tests for the sparsification substrate, evaluation metrics and batch sampling."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.centrality.evaluation import (
    approximation_ratio,
    compare_methods,
    effectiveness_curve,
    group_overlap,
    ranking_agreement,
    relative_difference,
    top_candidate_recall,
)
from repro.centrality.estimators import SamplingConfig, estimate_forest_delta
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.heuristics import degree_group
from repro.centrality.marginal import marginal_gains_all
from repro.linalg.laplacian import laplacian_dense
from repro.linalg.sparsify import (
    effective_resistances_of_edges,
    spectral_relative_error,
    spectral_sparsify,
    sparsify_and_compare,
)
from repro.sampling.parallel import batched_seeds, sample_forest_batch


class TestSparsify:
    def test_edge_resistances_match_pairwise(self, karate):
        from repro.centrality.resistance import resistance_distance

        resistances = effective_resistances_of_edges(karate)
        for index in (0, 10, 50):
            u, v = int(karate.edge_u[index]), int(karate.edge_v[index])
            assert resistances[index] == pytest.approx(
                resistance_distance(karate, u, v), rel=1e-8
            )

    def test_sparsifier_laplacian_unbiased_shape(self, karate):
        sparsifier = spectral_sparsify(karate, eps=0.5, seed=0)
        laplacian = sparsifier.laplacian()
        assert laplacian.shape == (karate.n, karate.n)
        assert np.allclose(np.asarray(laplacian.sum(axis=1)).ravel(), 0.0, atol=1e-9)

    def test_sparsifier_quadratic_forms_close(self, karate):
        """Lemma 4.4 shape: x^T L~ x stays within a moderate factor of x^T L x."""
        sparsifier = spectral_sparsify(karate, eps=0.3, seed=1)
        error = spectral_relative_error(karate, sparsifier, probes=32, seed=2)
        assert error < 0.5

    def test_more_samples_better_accuracy(self, small_ba):
        rough = spectral_sparsify(small_ba, eps=0.9, samples=200, seed=3)
        fine = spectral_sparsify(small_ba, eps=0.9, samples=20_000, seed=3)
        rough_error = spectral_relative_error(small_ba, rough, probes=16, seed=4)
        fine_error = spectral_relative_error(small_ba, fine, probes=16, seed=4)
        assert fine_error < rough_error

    def test_sparsifier_expected_laplacian(self, karate):
        """Averaging many independent sparsifiers recovers the Laplacian."""
        total = np.zeros((karate.n, karate.n))
        repeats = 30
        for i in range(repeats):
            total += spectral_sparsify(karate, eps=0.9, samples=400,
                                       seed=i).laplacian().toarray()
        average = total / repeats
        exact = laplacian_dense(karate)
        assert np.abs(average - exact).max() < 2.0

    def test_convenience_wrapper(self, karate):
        sparsifier, error = sparsify_and_compare(karate, eps=0.4, seed=5)
        assert sparsifier.samples > 0
        assert error >= 0.0

    def test_invalid_inputs(self, karate):
        with pytest.raises(InvalidParameterError):
            spectral_sparsify(karate, eps=1.5)
        with pytest.raises(InvalidParameterError):
            spectral_relative_error(karate, spectral_sparsify(karate, seed=0), probes=0)


class TestEvaluationMetrics:
    def test_relative_difference(self):
        assert relative_difference(2.0, 1.5) == pytest.approx(0.25)
        assert relative_difference(2.0, 2.5) == 0.0
        with pytest.raises(InvalidParameterError):
            relative_difference(0.0, 1.0)

    def test_approximation_ratio(self):
        assert approximation_ratio(4.0, 3.0) == pytest.approx(0.75)
        with pytest.raises(InvalidParameterError):
            approximation_ratio(0.0, 1.0)

    def test_group_overlap(self):
        assert group_overlap([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)
        assert group_overlap([], []) == 1.0
        assert group_overlap([1], [2]) == 0.0

    def test_ranking_agreement_perfect_and_reversed(self):
        reference = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        assert ranking_agreement(reference, reference) == pytest.approx(1.0)
        reversed_scores = {k: -v for k, v in reference.items()}
        assert ranking_agreement(reference, reversed_scores) == pytest.approx(-1.0)

    def test_ranking_agreement_requires_overlap(self):
        with pytest.raises(InvalidParameterError):
            ranking_agreement({1: 1.0}, {2: 2.0})

    def test_top_candidate_recall(self):
        reference = {i: float(i) for i in range(10)}
        estimate = {i: float(i) for i in range(10)}
        estimate[9], estimate[0] = 0.5, 9.5  # swap the best and the worst
        assert top_candidate_recall(reference, estimate, top=3) == pytest.approx(2 / 3)
        with pytest.raises(InvalidParameterError):
            top_candidate_recall(reference, estimate, top=0)

    def test_sampled_gains_rank_like_exact(self, karate):
        """Integration: ForestDelta's ranking agrees strongly with the exact gains."""
        group = [33]
        exact = marginal_gains_all(karate, group)
        config = SamplingConfig(eps=0.2, max_samples=400, max_jl_dimension=96)
        estimate, _ = estimate_forest_delta(karate, group, config, seed=9)
        assert ranking_agreement(exact, estimate) > 0.6
        assert top_candidate_recall(exact, estimate, top=5) >= 0.6

    def test_effectiveness_curve_monotone(self, small_ba):
        result = ExactGreedy(small_ba).run(4)
        curve = effectiveness_curve(small_ba, result)
        values = [curve[k] for k in sorted(curve)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_compare_methods_summary(self, karate):
        results = {
            "exact": ExactGreedy(karate).run(3),
            "degree": degree_group(karate, 3),
        }
        summary = compare_methods(karate, results, reference="exact")
        assert summary["exact"]["relative_difference"] == 0.0
        assert 0.0 <= summary["degree"]["overlap_with_reference"] <= 1.0

    def test_compare_methods_missing_reference(self, karate):
        with pytest.raises(InvalidParameterError):
            compare_methods(karate, {"degree": degree_group(karate, 2)},
                            reference="exact")


class TestParallelSampling:
    def test_batched_seeds_reproducible(self):
        assert batched_seeds(7, 5) == batched_seeds(7, 5)
        assert len(set(batched_seeds(7, 50))) == 50
        with pytest.raises(InvalidParameterError):
            batched_seeds(7, -1)

    def test_sequential_batch_valid(self, karate):
        forests = sample_forest_batch(karate, [0, 33], 6, seed=0)
        assert len(forests) == 6
        for forest in forests:
            forest.validate_against(karate)

    def test_batch_reproducible_and_independent_of_workers_param(self, karate):
        first = sample_forest_batch(karate, [0], 4, seed=3, workers=1)
        second = sample_forest_batch(karate, [0], 4, seed=3, workers=None)
        for a, b in zip(first, second):
            assert np.array_equal(a.parent, b.parent)

    def test_auto_dispatch_matches_lockstep(self, karate):
        """The default path is the vectorised lockstep kernel."""
        auto = sample_forest_batch(karate, [0, 33], 4, seed=9)
        lockstep = sample_forest_batch(karate, [0, 33], 4, seed=9,
                                       method="lockstep")
        for a, b in zip(auto, lockstep):
            assert np.array_equal(a.parent, b.parent)

    def test_unknown_method_rejected(self, karate):
        with pytest.raises(InvalidParameterError):
            sample_forest_batch(karate, [0], 2, seed=0, method="quantum")

    def test_process_pool_bit_identical_to_sequential(self, karate):
        """The batched_seeds contract: a scalar batch is the same however split.

        Exercises the ProcessPoolExecutor path (method="scalar", workers=2),
        which the other tests never reach, and checks bit-identical forests
        against the sequential scalar path.
        """
        sequential = sample_forest_batch(karate, [0, 33], 5, seed=11, workers=1,
                                         method="scalar")
        pooled = sample_forest_batch(karate, [0, 33], 5, seed=11, workers=2,
                                     method="scalar")
        assert len(pooled) == len(sequential)
        for a, b in zip(sequential, pooled):
            assert np.array_equal(a.parent, b.parent)
            assert np.array_equal(a.roots, b.roots)
            b.validate_against(karate)

    def test_process_pool_single_forest_falls_back_sequential(self, karate):
        # count == 1 short-circuits the pool even when workers > 1.
        pooled = sample_forest_batch(karate, [0], 1, seed=5, workers=4,
                                     method="scalar")
        sequential = sample_forest_batch(karate, [0], 1, seed=5, workers=1,
                                         method="scalar")
        assert np.array_equal(pooled[0].parent, sequential[0].parent)

    def test_empty_batch(self, karate):
        assert sample_forest_batch(karate, [0], 0, seed=0) == []

    def test_negative_count_rejected(self, karate):
        with pytest.raises(InvalidParameterError):
            sample_forest_batch(karate, [0], -2, seed=0)
