"""Tests for the rooted spanning-forest data structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.sampling.forest import Forest


@pytest.fixture
def small_forest():
    """A forest on 7 nodes: tree rooted at 0 (nodes 0-4) and at 5 (nodes 5-6)."""
    #       0            5
    #      / \           |
    #     1   2          6
    #        / \
    #       3   4
    parent = np.array([-1, 0, 0, 2, 2, -1, 5])
    return Forest(parent=parent, roots=np.array([0, 5]))


class TestForestBasics:
    def test_counts_and_roots(self, small_forest):
        assert small_forest.n == 7
        assert small_forest.roots.tolist() == [0, 5]
        assert small_forest.is_root(0)
        assert not small_forest.is_root(3)

    def test_depths(self, small_forest):
        assert small_forest.depths().tolist() == [0, 1, 1, 2, 2, 0, 1]

    def test_root_of(self, small_forest):
        assert small_forest.root_of().tolist() == [0, 0, 0, 0, 0, 5, 5]

    def test_topological_order_parents_first(self, small_forest):
        order = small_forest.topological_order().tolist()
        position = {node: i for i, node in enumerate(order)}
        for node in range(7):
            parent = small_forest.parent[node]
            if parent >= 0:
                assert position[int(parent)] < position[node]

    def test_path_to_root(self, small_forest):
        assert small_forest.path_to_root(3) == [3, 2, 0]
        assert small_forest.path_to_root(5) == [5]

    def test_tree_sizes(self, small_forest):
        assert small_forest.tree_sizes() == {0: 5, 5: 2}

    def test_rejects_missing_root(self):
        with pytest.raises(GraphError):
            Forest(parent=np.array([-1, 0]), roots=np.array([1]))

    def test_rejects_empty_roots(self):
        with pytest.raises(GraphError):
            Forest(parent=np.array([-1, 0]), roots=np.array([], dtype=np.int64))

    def test_rejects_orphan_non_root(self):
        forest = Forest(parent=np.array([-1, -1, 0]), roots=np.array([0]))
        with pytest.raises(GraphError):
            forest.depths()


class TestAncestry:
    def test_euler_intervals_nested(self, small_forest):
        tin, tout = small_forest.euler_intervals()
        for node in range(7):
            parent = small_forest.parent[node]
            if parent >= 0:
                assert tin[parent] < tin[node] <= tout[node] < tout[parent] + 1

    def test_is_ancestor(self, small_forest):
        assert small_forest.is_ancestor(0, 3)
        assert small_forest.is_ancestor(2, 4)
        assert small_forest.is_ancestor(3, 3)
        assert not small_forest.is_ancestor(1, 3)
        assert not small_forest.is_ancestor(5, 3)


class TestSubtreeSums:
    def test_subtree_sizes(self, small_forest):
        assert small_forest.subtree_sizes().tolist() == [5, 1, 3, 1, 1, 2, 1]

    def test_vector_weights(self, small_forest):
        weights = np.arange(7, dtype=float)
        sums = small_forest.subtree_sums(weights)
        # subtree(2) = {2, 3, 4} -> 2 + 3 + 4 = 9
        assert sums[2] == pytest.approx(9.0)
        assert sums[0] == pytest.approx(0 + 1 + 2 + 3 + 4)
        assert sums[6] == pytest.approx(6.0)

    def test_matrix_weights(self, small_forest):
        weights = np.stack([np.ones(7), np.arange(7, dtype=float)])
        sums = small_forest.subtree_sums(weights)
        assert sums.shape == (2, 7)
        assert sums[0].tolist() == small_forest.subtree_sizes().tolist()

    def test_wrong_length_rejected(self, small_forest):
        with pytest.raises(GraphError):
            small_forest.subtree_sums(np.ones(5))

    def test_brute_force_equivalence(self):
        rng = np.random.default_rng(5)
        parent = np.array([-1, 0, 1, 1, 0, 4, 4, 2, -1, 8])
        forest = Forest(parent=parent, roots=np.array([0, 8]))
        weights = rng.normal(size=10)
        sums = forest.subtree_sums(weights)
        tin, tout = forest.euler_intervals()
        for node in range(10):
            members = [v for v in range(10) if tin[node] <= tin[v] <= tout[node]]
            assert sums[node] == pytest.approx(weights[members].sum())


class TestValidation:
    def test_validate_against_graph(self, karate):
        # Build a BFS tree by hand via the traversal module.
        from repro.graph.traversal import bfs_tree

        tree = bfs_tree(karate, [0])
        forest = Forest(parent=tree.parent.copy(), roots=np.array([0]))
        forest.validate_against(karate)

    def test_validate_rejects_non_edge(self, path4):
        forest = Forest(parent=np.array([-1, 0, 0, 2]), roots=np.array([0]))
        with pytest.raises(GraphError):
            forest.validate_against(path4)

    def test_validate_rejects_wrong_size(self, path4):
        forest = Forest(parent=np.array([-1, 0]), roots=np.array([0]))
        with pytest.raises(GraphError):
            forest.validate_against(path4)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=500))
def test_random_parent_forest_invariants(n, seed):
    """Random valid parent arrays always yield consistent depths/roots/orders."""
    rng = np.random.default_rng(seed)
    # Create a forest by attaching each node to a random earlier node or making
    # it a root — guarantees acyclicity by construction.
    parent = np.full(n, -1, dtype=np.int64)
    roots = [0]
    for node in range(1, n):
        if rng.random() < 0.2:
            roots.append(node)
        else:
            parent[node] = int(rng.integers(0, node))
    forest = Forest(parent=parent, roots=np.array(sorted(roots)))
    depth = forest.depths()
    root_of = forest.root_of()
    assert np.all(depth >= 0)
    assert set(np.unique(root_of)) <= set(roots)
    assert forest.subtree_sizes().sum() >= n  # every node counted at least once
    sizes = forest.tree_sizes()
    assert sum(sizes.values()) == n
