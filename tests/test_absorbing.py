"""Tests for the absorbing random-walk quantities."""

import numpy as np
import pytest

from repro.graph import generators
from repro.centrality.absorbing import (
    expected_wilson_visits,
    hitting_times_to_group,
    mean_group_hitting_time,
    simulate_hitting_time,
    weighted_group_resistance_identity,
)
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.heuristics import degree_group
from repro.sampling.wilson import expected_sampling_cost


class TestHittingTimes:
    def test_path_graph_closed_form(self):
        """On a path rooted at one end, E[T_u] = u * (2L - u) for length-L path."""
        length = 5
        path = generators.path_graph(length + 1)
        times = hitting_times_to_group(path, [0])
        for u in range(length + 1):
            assert times[u] == pytest.approx(u * (2 * length - u), rel=1e-9)

    def test_group_members_zero(self, karate):
        times = hitting_times_to_group(karate, [3, 7])
        assert times[3] == 0.0 and times[7] == 0.0
        assert np.all(times >= 0)

    def test_larger_group_absorbs_faster(self, karate):
        single = mean_group_hitting_time(karate, [0])
        double = mean_group_hitting_time(karate, [0, 33])
        assert double < single

    def test_simulation_matches_exact(self, karate):
        exact = mean_group_hitting_time(karate, [0, 33])
        simulated = simulate_hitting_time(karate, [0, 33], walks=2000, seed=1)
        assert simulated == pytest.approx(exact, rel=0.2)

    def test_simulation_validates_inputs(self, karate):
        with pytest.raises(ValueError):
            simulate_hitting_time(karate, [0], walks=0)


class TestWilsonCostIdentities:
    def test_matches_sampling_module(self, karate):
        assert expected_wilson_visits(karate, [0]) == pytest.approx(
            expected_sampling_cost(karate, [0]), rel=1e-9
        )

    def test_degree_weighted_identity(self, karate):
        """Tr((I - P_{-S})^{-1}) = sum_u d_u (inv(L_{-S}))_uu."""
        for group in ([0], [0, 33], [5, 10]):
            assert expected_wilson_visits(karate, group) == pytest.approx(
                weighted_group_resistance_identity(karate, group), rel=1e-9
            )

    def test_hub_roots_cheaper_than_leaf_roots(self, small_ba):
        hubs = degree_group(small_ba, 3).group
        order = np.argsort(small_ba.degrees, kind="stable")
        leaves = [int(v) for v in order[:3]]
        assert expected_wilson_visits(small_ba, hubs) < expected_wilson_visits(
            small_ba, leaves
        )

    def test_cfcm_group_is_good_absorber(self, small_ba):
        """The CFCM-selected group absorbs walks faster than a random group."""
        greedy = ExactGreedy(small_ba).run(4).group
        rng = np.random.default_rng(0)
        random_group = sorted(int(v) for v in rng.choice(small_ba.n, 4, replace=False))
        assert mean_group_hitting_time(small_ba, greedy) <= mean_group_hitting_time(
            small_ba, random_group
        )
