"""Tests for edge-list IO and graph summary statistics."""

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graph import generators, io, properties
from repro.graph.builders import to_networkx
from repro.graph.graph import Graph


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path, karate):
        path = tmp_path / "karate.txt"
        reread = io.roundtrip(karate, path)
        assert reread.n == karate.n
        assert reread.m == karate.m

    def test_comments_and_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n% konect header\n0 1 5.0\n1 2 1.0 17\n\n")
        graph, labels = io.read_edge_list(path)
        assert graph.n == 3
        assert graph.m == 2
        assert set(labels.values()) == {"0", "1", "2"}

    def test_string_labels(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob\nbob carol\n")
        graph, labels = io.read_edge_list(path)
        assert graph.n == 3
        assert sorted(labels.values()) == ["alice", "bob", "carol"]

    def test_lcc_only(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 2\n5 6\n")
        graph, labels = io.read_edge_list(path, lcc_only=True)
        assert graph.n == 3
        assert set(labels.values()) == {"0", "1", "2"}

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            io.read_edge_list(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(GraphError):
            io.read_edge_list(path)

    def test_header_written(self, tmp_path, path4):
        path = tmp_path / "out.txt"
        io.write_edge_list(path4, path, header=["generated for tests"])
        content = path.read_text()
        assert content.startswith("# generated for tests")
        assert "0 1" in content


class TestProperties:
    def test_mean_degree(self, karate):
        assert properties.mean_degree(karate) == pytest.approx(2 * karate.m / karate.n)

    def test_degree_histogram_sums_to_n(self, karate):
        hist = properties.degree_histogram(karate)
        assert hist.sum() == karate.n

    def test_clustering_matches_networkx(self, karate):
        ours = properties.global_clustering(karate)
        reference = nx.transitivity(to_networkx(karate))
        assert ours == pytest.approx(reference, rel=1e-9)

    def test_clustering_zero_for_tree(self):
        tree = generators.random_tree(30, seed=0)
        assert properties.global_clustering(tree) == 0.0

    def test_extra_root_size_star(self):
        star = generators.star_graph(20)
        # Removing the hub drops the max degree to 0, so |T*| = 1.
        assert properties.extra_root_size(star) == 1

    def test_extra_root_size_bounded(self, medium_ba):
        size = properties.extra_root_size(medium_ba, max_size=32)
        assert 1 <= size <= 32

    def test_summarize_fields(self, karate):
        summary = properties.summarize(karate)
        assert summary.nodes == 34
        assert summary.edges == 78
        assert summary.diameter == 5
        assert summary.max_degree == 17
        assert summary.extra_root_size >= 1
        assert set(summary.as_dict()) == {
            "nodes", "edges", "diameter", "max_degree", "mean_degree",
            "extra_root_size",
        }


class TestDatasets:
    def test_karate_matches_networkx(self, karate):
        reference = nx.karate_club_graph()
        assert karate.n == reference.number_of_nodes()
        assert karate.m == reference.number_of_edges()
        for node in range(karate.n):
            assert karate.degree(node) == reference.degree(node)

    def test_tiny_suite_sizes(self):
        from repro.graph.datasets import tiny_suite

        suite = tiny_suite()
        assert len(suite) == 4
        sizes = sorted(graph.n for graph in suite.values())
        assert sizes == [23, 34, 49, 62]

    def test_paper_network_registry(self):
        from repro.graph.datasets import PAPER_NETWORKS, paper_network

        assert "Euroroads" in PAPER_NETWORKS
        graph = paper_network("Euroroads")
        assert isinstance(graph, Graph)
        assert graph.n > 100

    def test_paper_network_unknown(self):
        from repro.exceptions import InvalidParameterError
        from repro.graph.datasets import paper_network

        with pytest.raises(InvalidParameterError):
            paper_network("NotADataset")

    def test_networks_by_tier(self):
        from repro.graph.datasets import networks_by_tier

        tiny = networks_by_tier("tiny")
        assert all(spec.tier == "tiny" for spec in tiny)

    def test_networks_by_tier_unknown(self):
        from repro.exceptions import InvalidParameterError
        from repro.graph.datasets import networks_by_tier

        with pytest.raises(InvalidParameterError):
            networks_by_tier("galactic")
