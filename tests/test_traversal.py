"""Tests for BFS, connectivity and diameter utilities."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import DisconnectedGraphError, InvalidNodeError
from repro.graph.builders import to_networkx
from repro.graph.graph import Graph
from repro.graph import generators
from repro.graph.traversal import (
    bfs_order,
    bfs_tree,
    connected_components,
    diameter,
    eccentricity,
    is_connected,
    largest_connected_component,
    require_connected,
)


class TestBFS:
    def test_single_root_depths_match_networkx(self, karate):
        tree = bfs_tree(karate, [0])
        lengths = nx.single_source_shortest_path_length(to_networkx(karate), 0)
        for node, depth in lengths.items():
            assert tree.depth[node] == depth

    def test_multi_root_depths(self, path4):
        tree = bfs_tree(path4, [0, 3])
        assert tree.depth.tolist() == [0, 1, 1, 0]
        assert tree.parent[0] == -1 and tree.parent[3] == -1

    def test_parent_consistency(self, karate):
        tree = bfs_tree(karate, [5])
        for node in range(karate.n):
            parent = tree.parent[node]
            if parent >= 0:
                assert tree.depth[node] == tree.depth[parent] + 1
                assert karate.has_edge(int(node), int(parent))

    def test_order_starts_with_roots(self, karate):
        tree = bfs_tree(karate, [3, 7])
        assert sorted(tree.order[:2].tolist()) == [3, 7]
        assert len(tree.order) == karate.n

    def test_levels_partition_nodes(self, karate):
        tree = bfs_tree(karate, [0])
        total = sum(level.size for level in tree.levels())
        assert total == karate.n

    def test_bfs_order_deterministic(self, karate):
        assert np.array_equal(bfs_order(karate, [1]), bfs_order(karate, [1]))

    def test_empty_roots_raises(self, karate):
        with pytest.raises(InvalidNodeError):
            bfs_tree(karate, [])

    def test_invalid_root_raises(self, karate):
        with pytest.raises(InvalidNodeError):
            bfs_tree(karate, [99])

    def test_unreachable_nodes_marked(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        tree = bfs_tree(graph, [0])
        assert tree.depth[2] == -1 and tree.depth[3] == -1


class TestComponents:
    def test_connected_graph_single_component(self, karate):
        components = connected_components(karate)
        assert len(components) == 1
        assert components[0].size == karate.n

    def test_two_components(self):
        graph = Graph(5, [(0, 1), (1, 2), (3, 4)])
        components = connected_components(graph)
        assert len(components) == 2
        assert components[0].size == 3

    def test_is_connected(self, karate):
        assert is_connected(karate)
        assert not is_connected(Graph(3, [(0, 1)]))

    def test_single_node_connected(self):
        assert is_connected(Graph(1, []))

    def test_require_connected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            require_connected(Graph(3, [(0, 1)]))

    def test_largest_connected_component(self):
        graph = Graph(6, [(0, 1), (1, 2), (2, 0), (4, 5)])
        lcc, mapping = largest_connected_component(graph)
        assert lcc.n == 3
        assert sorted(mapping.tolist()) == [0, 1, 2]


class TestDiameter:
    def test_path_diameter(self):
        assert diameter(generators.path_graph(10), exact=True) == 9

    def test_cycle_diameter(self):
        assert diameter(generators.cycle_graph(8), exact=True) == 4

    def test_double_sweep_matches_exact_on_trees(self):
        tree = generators.random_tree(60, seed=0)
        assert diameter(tree) == diameter(tree, exact=True)

    def test_estimate_close_to_networkx(self, karate):
        exact = nx.diameter(to_networkx(karate))
        assert diameter(karate, exact=True) == exact
        assert diameter(karate) <= exact
        assert diameter(karate) >= exact - 1

    def test_single_node(self):
        assert diameter(Graph(1, [])) == 0

    def test_disconnected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            diameter(Graph(3, [(0, 1)]))


class TestEccentricity:
    def test_path_endpoints(self):
        graph = generators.path_graph(6)
        assert eccentricity(graph, 0) == 5
        assert eccentricity(graph, 3) == 3

    def test_matches_networkx(self, karate):
        nx_graph = to_networkx(karate)
        for node in (0, 10, 33):
            assert eccentricity(karate, node) == nx.eccentricity(nx_graph, node)
