"""Tests for the Laplacian / SDD solver substrate."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, InvalidParameterError
from repro.graph import generators
from repro.linalg.laplacian import grounded_laplacian, grounded_laplacian_dense
from repro.linalg.solvers import (
    LaplacianSolver,
    SolverMethod,
    estimate_trace_of_inverse,
    solve_grounded,
)


@pytest.fixture
def grounded_system(karate):
    matrix, kept = grounded_laplacian(karate, [0])
    dense, _ = grounded_laplacian_dense(karate, [0])
    rhs = np.linspace(-1.0, 1.0, kept.size)
    reference = np.linalg.solve(dense, rhs)
    return matrix, rhs, reference


class TestSolveMethods:
    @pytest.mark.parametrize("method", [
        SolverMethod.DENSE_CHOLESKY,
        SolverMethod.SPARSE_LU,
        SolverMethod.CONJUGATE_GRADIENT,
    ])
    def test_single_rhs(self, grounded_system, method):
        matrix, rhs, reference = grounded_system
        solver = LaplacianSolver(matrix, method=method)
        assert np.allclose(solver.solve(rhs), reference, atol=1e-6)

    @pytest.mark.parametrize("method", [
        SolverMethod.DENSE_CHOLESKY,
        SolverMethod.SPARSE_LU,
        SolverMethod.CONJUGATE_GRADIENT,
    ])
    def test_multiple_rhs(self, grounded_system, method):
        matrix, rhs, reference = grounded_system
        block = np.stack([rhs, 2.0 * rhs], axis=1)
        solver = LaplacianSolver(matrix, method=method)
        solved = solver.solve_many(block)
        assert solved.shape == block.shape
        assert np.allclose(solved[:, 0], reference, atol=1e-6)
        assert np.allclose(solved[:, 1], 2.0 * reference, atol=1e-6)

    def test_string_method_accepted(self, grounded_system):
        matrix, rhs, reference = grounded_system
        solver = LaplacianSolver(matrix, method="cg")
        assert np.allclose(solver.solve(rhs), reference, atol=1e-6)

    def test_auto_small_uses_dense(self, grounded_system):
        matrix, _, _ = grounded_system
        solver = LaplacianSolver(matrix, method=SolverMethod.AUTO)
        assert solver.method is SolverMethod.DENSE_CHOLESKY

    def test_auto_large_uses_sparse(self):
        graph = generators.barabasi_albert(800, 2, seed=0)
        matrix, _ = grounded_laplacian(graph, [0])
        solver = LaplacianSolver(matrix, method=SolverMethod.AUTO)
        assert solver.method is SolverMethod.SPARSE_LU

    def test_solve_grounded_helper(self, grounded_system):
        matrix, rhs, reference = grounded_system
        assert np.allclose(solve_grounded(matrix, rhs), reference, atol=1e-6)


class TestValidation:
    def test_wrong_rhs_shape(self, grounded_system):
        matrix, _, _ = grounded_system
        solver = LaplacianSolver(matrix)
        with pytest.raises(InvalidParameterError):
            solver.solve(np.ones(3))

    def test_wrong_block_shape(self, grounded_system):
        matrix, _, _ = grounded_system
        solver = LaplacianSolver(matrix)
        with pytest.raises(InvalidParameterError):
            solver.solve_many(np.ones((3, 2)))

    def test_non_square_rejected(self):
        with pytest.raises(InvalidParameterError):
            LaplacianSolver(np.ones((2, 3)))

    def test_indefinite_matrix_rejected_by_cholesky(self):
        indefinite = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(InvalidParameterError):
            LaplacianSolver(indefinite, method=SolverMethod.DENSE_CHOLESKY)

    def test_cg_requires_positive_diagonal(self):
        bad = np.array([[0.0, 0.0], [0.0, 1.0]])
        with pytest.raises(InvalidParameterError):
            LaplacianSolver(bad, method=SolverMethod.CONJUGATE_GRADIENT)

    def test_cg_iteration_cap(self, grounded_system):
        matrix, rhs, _ = grounded_system
        solver = LaplacianSolver(matrix, method=SolverMethod.CONJUGATE_GRADIENT,
                                 maxiter=1, tol=1e-14)
        with pytest.raises(ConvergenceError):
            solver.solve(rhs)


class TestTraceEstimation:
    def test_diagonal_of_inverse(self, karate):
        matrix, _ = grounded_laplacian(karate, [0])
        dense, _ = grounded_laplacian_dense(karate, [0])
        solver = LaplacianSolver(matrix)
        assert np.allclose(solver.diagonal_of_inverse(),
                           np.diag(np.linalg.inv(dense)), atol=1e-8)

    def test_trace_of_inverse(self, karate):
        matrix, _ = grounded_laplacian(karate, [5])
        dense, _ = grounded_laplacian_dense(karate, [5])
        solver = LaplacianSolver(matrix)
        assert solver.trace_of_inverse() == pytest.approx(
            np.trace(np.linalg.inv(dense)), rel=1e-9
        )

    def test_hutchinson_estimate_within_tolerance(self, medium_ba):
        matrix, _ = grounded_laplacian(medium_ba, [0, 1])
        dense, _ = grounded_laplacian_dense(medium_ba, [0, 1])
        exact = float(np.trace(np.linalg.inv(dense)))
        estimate = estimate_trace_of_inverse(matrix, probes=256, seed=1)
        assert estimate == pytest.approx(exact, rel=0.15)

    def test_hutchinson_rejects_zero_probes(self, karate):
        matrix, _ = grounded_laplacian(karate, [0])
        with pytest.raises(InvalidParameterError):
            estimate_trace_of_inverse(matrix, probes=0)
