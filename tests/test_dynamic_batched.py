"""Tests for the generalised incremental-update stack: rank-t Woodbury
batches, block-inverse grow, and the fully mutable node set."""

import numpy as np
import pytest

from repro.dynamic import (
    DynamicCFCM,
    DynamicGraph,
    IncrementalResistance,
    apply_random_node_event,
    random_churn_journal,
    random_update_journal,
)
from repro.exceptions import (
    DisconnectedGraphError,
    GraphError,
    InvalidNodeError,
    InvalidParameterError,
)
from repro.graph import generators
from repro.linalg.laplacian import grounded_laplacian_dense, laplacian_dense
from repro.linalg.updates import (
    grounded_inverse_block_update,
    grounded_inverse_downdate,
    grounded_inverse_edge_update,
    grounded_inverse_grow,
)


def _removable_node(graph: DynamicGraph, avoid=frozenset()) -> int:
    """First active node outside ``avoid`` whose removal keeps connectivity."""
    for node in graph.node_ids():
        node = int(node)
        if node in avoid:
            continue
        if not graph._node_removal_disconnects(node):
            return node
    raise AssertionError("no removable node found")


def fresh_grounded_trace(graph: DynamicGraph, group) -> float:
    """Reference ``Tr(inv(L_{-S}))`` from a fresh dense factorisation."""
    mapping = graph.snapshot_mapping()
    grounded = set(group)
    positions = [i for i, node in enumerate(mapping) if int(node) not in grounded]
    full = graph.laplacian_dense()
    return float(np.trace(np.linalg.inv(full[np.ix_(positions, positions)])))


class TestBlockUpdate:
    """Rank-t Woodbury batches against fresh inversion."""

    def _grounded(self, graph, group):
        matrix, kept = grounded_laplacian_dense(graph, group)
        return matrix, np.linalg.inv(matrix), {int(v): i for i, v in enumerate(kept)}

    def test_mixed_batch_matches_fresh(self, karate):
        matrix, inverse, local = self._grounded(karate, [0])
        events = [
            (local[15], local[20], 1.0),    # insertion
            (local[2], local[3], -1.0),     # deletion
            (local[9], None, 1.0),          # insertion with grounded endpoint
            (local[4], local[10], 0.7),     # reweight
        ]
        updated = grounded_inverse_block_update(inverse, events)
        perturbed = matrix.copy()
        for i, j, delta in events:
            b = np.zeros(matrix.shape[0])
            b[i] = 1.0
            if j is not None:
                b[j] = -1.0
            perturbed += delta * np.outer(b, b)
        assert np.allclose(updated, np.linalg.inv(perturbed), atol=1e-8)

    def test_matches_sequential_rank1_chain(self, karate):
        _, inverse, local = self._grounded(karate, [33])
        events = [(local[0], local[5], 0.5), (local[11], None, 1.0),
                  (local[2], local[3], -0.25)]
        chained = inverse
        for i, j, delta in events:
            chained = grounded_inverse_edge_update(chained, i, j, delta)
        batched = grounded_inverse_block_update(inverse, events)
        assert np.allclose(batched, chained, atol=1e-10)

    def test_empty_and_zero_delta_batches(self, karate):
        _, inverse, local = self._grounded(karate, [0])
        out = grounded_inverse_block_update(inverse, [])
        assert np.array_equal(out, inverse)
        assert out is not inverse  # always a copy
        skipped = grounded_inverse_block_update(
            inverse, [(local[2], local[3], 0.0)]
        )
        assert np.array_equal(skipped, inverse)

    def test_singleton_batch_matches_rank1(self, karate):
        _, inverse, local = self._grounded(karate, [0])
        single = grounded_inverse_block_update(inverse, [(local[2], local[3], -1.0)])
        rank1 = grounded_inverse_edge_update(inverse, local[2], local[3], -1.0)
        assert np.allclose(single, rank1, atol=1e-12)

    def test_remove_and_readd_is_robust(self, path4):
        # Sequentially, removing the bridge (2, 3) is singular; as a batch the
        # perturbations sum, so remove-then-readd is exactly a no-op.
        _, inverse, local = self._grounded(path4, [0])
        events = [(local[2], local[3], -1.0), (local[2], local[3], 1.0)]
        with pytest.raises(InvalidParameterError):
            grounded_inverse_edge_update(inverse, local[2], local[3], -1.0)
        assert np.allclose(
            grounded_inverse_block_update(inverse, events), inverse, atol=1e-10
        )

    def test_singular_batch_raises(self, path4):
        _, inverse, local = self._grounded(path4, [0])
        events = [(local[1], local[2], 0.5), (local[2], local[3], -1.0)]
        with pytest.raises(InvalidParameterError, match="singular"):
            grounded_inverse_block_update(inverse, events)

    def test_bad_indices_rejected(self, karate):
        _, inverse, _ = self._grounded(karate, [0])
        with pytest.raises(InvalidParameterError):
            grounded_inverse_block_update(inverse, [(-1, 2, 1.0), (0, 1, 1.0)])
        with pytest.raises(InvalidParameterError):
            grounded_inverse_block_update(inverse, [(4, 4, 1.0), (0, 1, 1.0)])
        with pytest.raises(InvalidParameterError):
            grounded_inverse_block_update(np.ones((2, 3)), [(0, 1, 1.0)])


class TestGrow:
    """Block-inverse row/column append, the dual of the downdate."""

    def test_grow_matches_fresh(self, karate):
        matrix, kept = grounded_laplacian_dense(karate, [0])
        inverse = np.linalg.inv(matrix)
        n = matrix.shape[0]
        column = np.zeros(n)
        column[3] = -1.0
        column[7] = -2.0
        grown = grounded_inverse_grow(inverse, column, 4.5)
        bigger = np.zeros((n + 1, n + 1))
        bigger[:n, :n] = matrix
        bigger[:n, n] = column
        bigger[n, :n] = column
        bigger[n, n] = 4.5
        assert np.allclose(grown, np.linalg.inv(bigger), atol=1e-8)

    def test_grow_after_downdate_round_trips(self, karate):
        matrix, _ = grounded_laplacian_dense(karate, [0])
        inverse = np.linalg.inv(matrix)
        n = matrix.shape[0]
        # Downdate the *last* row, then grow it back with the original
        # coupling column: the round trip must restore the inverse exactly.
        reduced = grounded_inverse_downdate(inverse, n - 1)
        restored = grounded_inverse_grow(
            reduced, matrix[:-1, -1], float(matrix[-1, -1])
        )
        assert np.allclose(restored, inverse, atol=1e-8)

    def test_grow_attached_only_to_ground(self, karate):
        # A node whose every edge goes to the grounded set: c = 0, d = Σw,
        # and its resistance to the group is 1/d.
        matrix, _ = grounded_laplacian_dense(karate, [0])
        inverse = np.linalg.inv(matrix)
        grown = grounded_inverse_grow(inverse, np.zeros(matrix.shape[0]), 2.0)
        assert grown[-1, -1] == pytest.approx(0.5)
        assert np.allclose(grown[:-1, :-1], inverse, atol=1e-12)

    def test_singular_and_invalid_grows_rejected(self, karate):
        matrix, _ = grounded_laplacian_dense(karate, [0])
        inverse = np.linalg.inv(matrix)
        with pytest.raises(InvalidParameterError, match="singular"):
            grounded_inverse_grow(inverse, np.zeros(matrix.shape[0]), 0.0)
        with pytest.raises(InvalidParameterError):
            grounded_inverse_grow(inverse, np.zeros(3), 1.0)


class TestDynamicGraphNodes:
    """Mutable node set of DynamicGraph: stable ids, guards, snapshots."""

    def test_add_node_journals_and_connects(self, karate):
        graph = DynamicGraph(karate)
        event = graph.add_node({3: 2.0, 7: 1.0})
        assert event.kind == "add_node" and event.is_node_event
        assert event.node == karate.n
        assert event.edges == ((3, 2.0), (7, 1.0))
        assert graph.n == karate.n + 1
        assert graph.has_node(event.node)
        assert graph.has_edge(event.node, 3) and graph.weight(event.node, 3) == 2.0
        assert not graph.is_unit_weighted

    def test_add_node_accepts_bare_neighbour_lists(self, karate):
        graph = DynamicGraph(karate)
        event = graph.add_node([0, (5, 1.0)])
        assert event.edges == ((0, 1.0), (5, 1.0))
        assert graph.is_unit_weighted

    def test_add_node_rejects_bad_edges(self, karate):
        graph = DynamicGraph(karate)
        with pytest.raises(DisconnectedGraphError):
            graph.add_node({})
        with pytest.raises(GraphError):
            graph.add_node([3, 3])
        with pytest.raises(InvalidParameterError):
            graph.add_node({3: -1.0})
        with pytest.raises(InvalidNodeError):
            graph.add_node({999: 1.0})
        assert graph.version == 0  # rejected edits leave no journal trace

    def test_remove_node_journals_incident_edges(self, karate):
        graph = DynamicGraph(karate)
        degree = graph.degree(11)
        event = graph.remove_node(11)
        assert event.kind == "remove_node" and event.node == 11
        assert len(event.edges) == degree
        assert graph.n == karate.n - 1
        assert not graph.has_node(11)
        with pytest.raises(InvalidNodeError):
            graph.degree(11)
        with pytest.raises(InvalidNodeError):
            graph.add_edge(11, 20)

    def test_remove_node_connectivity_guard(self, star6):
        graph = DynamicGraph(star6)
        with pytest.raises(DisconnectedGraphError):
            graph.remove_node(0)  # the hub is a cut vertex
        assert graph.version == 0
        leaf_event = graph.remove_node(1)  # leaves are always safe
        assert leaf_event.edges == ((0, 1.0),)

    def test_remove_node_minimum_size_guard(self):
        graph = DynamicGraph(generators.path_graph(2))
        with pytest.raises(GraphError):
            graph.remove_node(0)

    def test_stable_ids_not_reused(self, cycle5):
        graph = DynamicGraph(cycle5)
        graph.remove_node(2)
        event = graph.add_node([0, 3])
        assert event.node == 5  # removed id 2 is retired forever
        assert sorted(int(x) for x in graph.node_ids()) == [0, 1, 3, 4, 5]

    def test_snapshot_remaps_ids(self, cycle5):
        graph = DynamicGraph(cycle5)
        graph.remove_node(2)
        snapshot = graph.snapshot()
        mapping = graph.snapshot_mapping()
        assert snapshot.n == 4
        assert [int(x) for x in mapping] == [0, 1, 3, 4]
        assert graph.compact_index(3) == 2
        assert graph.compact_nodes([0, 4]) == [0, 3]
        # Edge (3, 4) survives as compact (2, 3).
        assert snapshot.has_edge(2, 3)
        with pytest.raises(InvalidNodeError):
            graph.compact_index(2)

    def test_laplacian_matches_numpy_reference(self, karate):
        graph = DynamicGraph(karate)
        assert np.allclose(graph.laplacian_dense(), laplacian_dense(karate))
        graph.update_weight(0, 1, 3.0)
        graph.remove_node(16)
        graph.add_node({4: 2.0, 8: 1.0})
        mapping = graph.snapshot_mapping()
        compact = {int(x): i for i, x in enumerate(mapping)}
        reference = np.zeros((graph.n, graph.n))
        for (u, v), w in [((u, v), graph.weight(u, v)) for u, v in graph.edges()]:
            cu, cv = compact[u], compact[v]
            reference[cu, cu] += w
            reference[cv, cv] += w
            reference[cu, cv] -= w
            reference[cv, cu] -= w
        assert np.allclose(graph.laplacian_dense(), reference)

    def test_validate_group_against_active_set(self, cycle5):
        graph = DynamicGraph(cycle5)
        graph.remove_node(2)
        assert graph.validate_group([4, 0]) == (0, 4)
        with pytest.raises(InvalidNodeError):
            graph.validate_group([2])
        with pytest.raises(InvalidParameterError):
            graph.validate_group([])
        with pytest.raises(InvalidParameterError):
            graph.validate_group([0, 0])
        with pytest.raises(InvalidParameterError):
            graph.validate_group([0, 1, 3, 4])  # not a strict subset


class TestJournalCompaction:
    def test_compact_truncates_prefix(self, cycle5):
        graph = DynamicGraph(cycle5)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        graph.remove_edge(0, 2)
        assert graph.compact(2) == 2
        assert graph.journal_floor == 2
        assert [e.version for e in graph.journal()] == [3]
        assert [e.version for e in graph.journal_since(2)] == [3]
        assert graph.journal_since(3) == []
        with pytest.raises(GraphError):
            graph.journal_since(1)
        # Compacting again below/at the floor is a no-op.
        assert graph.compact(1) == 0
        assert graph.compact(10) == 1  # clamped to the current version
        assert graph.journal() == ()

    def test_full_history_request_still_works_uncompacted(self, cycle5):
        graph = DynamicGraph(cycle5)
        graph.add_edge(0, 2)
        assert [e.version for e in graph.journal_since(-1)] == [1]
        graph.compact(1)
        with pytest.raises(GraphError):
            graph.journal_since(-1)  # now genuinely truncated

    def test_query_only_traffic_compacts_journal(self, small_ba):
        graph = DynamicGraph(small_ba)
        engine = DynamicCFCM(graph, seed=0)
        rng = np.random.default_rng(5)
        for _ in range(5):
            random_update_journal(graph, 8, rng)
            engine.query(3, method="degree")
        assert graph.journal_floor == graph.version
        assert graph.journal() == ()

    def test_mapping_cached_across_edge_churn_and_read_only(self, small_ba):
        graph = DynamicGraph(small_ba)
        first = graph.snapshot_mapping()
        random_update_journal(graph, 5, np.random.default_rng(0))
        assert graph.snapshot_mapping() is first  # edge churn reuses the cache
        graph.add_node([0])
        second = graph.snapshot_mapping()
        assert second is not first and int(second[-1]) == small_ba.n
        with pytest.raises(ValueError):
            second[0] = 99  # callers cannot corrupt the shared cache

    def test_tracker_recovers_from_compaction(self, small_ba):
        graph = DynamicGraph(small_ba)
        tracker = IncrementalResistance(graph, [0], refresh_interval=1000)
        random_update_journal(graph, 6, np.random.default_rng(0))
        graph.compact(graph.version)  # drop the suffix the tracker needs
        assert tracker.trace() == pytest.approx(
            fresh_grounded_trace(graph, [0]), rel=1e-9
        )
        assert tracker.stats.refreshes == 1

    def test_engine_recovers_from_external_compaction(self, small_ba):
        graph = DynamicGraph(small_ba)
        engine = DynamicCFCM(graph, seed=0, pool_size=4)
        engine.evaluate_forest([0, 1])
        engine.evaluate_exact([0, 1])
        random_update_journal(graph, 5, np.random.default_rng(0))
        graph.compact(graph.version)  # an external consumer raced us
        # The engine must flush what it cannot replay and keep serving.
        assert engine.evaluate_exact([0, 1]) == pytest.approx(
            graph.n / fresh_grounded_trace(graph, [0, 1]), rel=1e-9
        )
        assert engine.evaluate_forest([0, 1]) > 0.0
        assert engine.stats.pools_flushed >= 1

    def test_stale_tracker_does_not_pin_journal(self, small_ba):
        graph = DynamicGraph(small_ba)
        engine = DynamicCFCM(graph, seed=0, refresh_interval=8)
        engine.evaluate_exact([0])  # this tracker then goes idle forever
        rng = np.random.default_rng(3)
        for _ in range(10):
            random_update_journal(graph, 4, rng)
            engine.evaluate_exact([1, 2])
        # The idle tracker lags far beyond refresh_interval, so it would
        # refresh (not replay) anyway; the journal must stay bounded.
        assert graph.version == 40
        assert graph.version - graph.journal_floor <= 2 * engine.refresh_interval
        assert len(graph.journal()) <= 2 * engine.refresh_interval
        # And the stale tracker still answers correctly via its refresh path.
        assert engine.evaluate_exact([0]) == pytest.approx(
            graph.n / fresh_grounded_trace(graph, [0]), rel=1e-9
        )

    def test_engine_compacts_consumed_prefix(self, small_ba):
        graph = DynamicGraph(small_ba)
        engine = DynamicCFCM(graph, seed=0)
        engine.evaluate_exact([0, 1])
        random_update_journal(graph, 10, np.random.default_rng(1))
        engine.evaluate_exact([0, 1])
        # The tracker synced through _sync_pools' version, so the next sync
        # compacts everything both consumers have seen.
        engine.evaluate_exact([0, 1])
        assert graph.journal_floor == graph.version
        assert graph.journal() == ()


class TestBatchedSyncEquivalence:
    """ISSUE acceptance: batched Woodbury == fresh factorisation (1e-8)."""

    @pytest.mark.parametrize("seed", [3, 17, 42])
    def test_randomized_mixed_journals(self, seed):
        rng = np.random.default_rng(seed)
        base = generators.barabasi_albert(70, 3, seed=seed)
        graph = DynamicGraph(base)
        group = [0, 5, 9]
        tracker = IncrementalResistance(graph, group, refresh_interval=10_000)
        for _ in range(6):
            events = random_churn_journal(graph, 12, rng,
                                          node_probability=0.25,
                                          protected=group)
            # Reweight a random surviving edge so every event kind appears.
            edges = list(graph.edges())
            u, v = edges[int(rng.integers(0, len(edges)))]
            graph.update_weight(u, v, float(rng.uniform(0.5, 2.0)))
            assert events
            assert tracker.trace() == pytest.approx(
                fresh_grounded_trace(graph, group), abs=1e-8
            )
        stats = tracker.stats
        assert stats.batch_updates > 0
        assert stats.refreshes == 0
        assert stats.node_grows + stats.node_downdates > 0

    def test_pure_edge_burst_is_one_batch(self, medium_ba):
        graph = DynamicGraph(medium_ba)
        tracker = IncrementalResistance(graph, [0, 5], refresh_interval=1000)
        random_update_journal(graph, 16, np.random.default_rng(2))
        tracker.trace()
        assert tracker.stats.batch_updates == 1
        assert tracker.stats.batched_events == 16
        assert tracker.stats.rank1_updates == 0

    def test_singular_batch_falls_back_to_refresh(self, small_ba, monkeypatch):
        graph = DynamicGraph(small_ba)
        tracker = IncrementalResistance(graph, [0], refresh_interval=1000)
        random_update_journal(graph, 8, np.random.default_rng(4))

        import repro.linalg.backends as backends_module

        def singular(*args, **kwargs):
            raise InvalidParameterError("singular block update (forced)")

        monkeypatch.setattr(backends_module,
                            "grounded_inverse_block_update", singular)
        assert tracker.trace() == pytest.approx(
            fresh_grounded_trace(graph, [0]), rel=1e-9
        )
        assert tracker.stats.refreshes == 1
        assert tracker.stats.singular_refreshes == 1

    def test_grow_after_downdate_round_trip_through_tracker(self, karate):
        graph = DynamicGraph(karate)
        group = [0, 33]
        tracker = IncrementalResistance(graph, group, refresh_interval=1000)
        before = tracker.trace()
        removal = graph.remove_node(11)
        tracker.trace()
        assert tracker.stats.node_downdates == 1
        graph.add_node(list(removal.edges))  # same attachments, new id
        after = tracker.trace()
        assert tracker.stats.node_grows == 1
        # The re-joined node is electrically identical to the departed one.
        assert after == pytest.approx(before, abs=1e-8)
        assert tracker.stats.refreshes == 0

    def test_node_events_count_true_cost_against_budget(self, karate):
        graph = DynamicGraph(karate)
        tracker = IncrementalResistance(graph, [0], refresh_interval=8)
        # One add_node with 8 kept attachments costs 1 grow + 8 diagonal
        # corrections = 9 > 8 low-rank updates: must refresh, not replay.
        graph.add_node(list(range(1, 9)))
        assert tracker.trace() == pytest.approx(
            fresh_grounded_trace(graph, [0]), rel=1e-9
        )
        assert tracker.stats.refreshes == 1
        assert tracker.stats.node_grows == 0

    def test_removing_grounded_node_invalidates_tracker(self, small_ba):
        graph = DynamicGraph(small_ba)
        tracker = IncrementalResistance(graph, [3], refresh_interval=1000)
        graph.remove_node(3)
        with pytest.raises(GraphError, match="no longer exists"):
            tracker.trace()


class TestEngineNodeChurn:
    def test_query_and_evaluate_across_churn(self, small_ba):
        graph = DynamicGraph(small_ba)
        engine = DynamicCFCM(graph, seed=0)
        first = engine.query(3, method="degree")
        graph.remove_node(_removable_node(graph, avoid={0, 1}))
        joined = graph.add_node([0, 1]).node
        result = engine.query(3, method="degree")
        assert result is not first
        for node in result.group:
            assert graph.has_node(node)
        value = engine.evaluate_exact(result.group)
        assert value == pytest.approx(
            graph.n / fresh_grounded_trace(graph, result.group), rel=1e-9
        )
        assert engine.evaluate_exact([joined]) > 0.0

    def test_query_group_uses_stable_ids(self, cycle5):
        graph = DynamicGraph(cycle5)
        graph.add_edge(0, 2)
        graph.add_edge(1, 4)
        graph.remove_node(1)
        engine = DynamicCFCM(graph, seed=0)
        result = engine.query(2, method="degree")
        assert all(graph.has_node(node) for node in result.group)
        assert 1 not in result.group

    def test_iteration_log_uses_stable_ids(self, small_ba):
        graph = DynamicGraph(small_ba)
        removed = _removable_node(graph, avoid={0, 1})
        graph.remove_node(removed)
        engine = DynamicCFCM(graph, seed=0)
        result = engine.query(3, method="exact")
        logged = [entry["node"] for entry in result.iteration_log
                  if "node" in entry]
        assert logged == list(result.group)
        for node in logged:
            assert graph.has_node(node)

    def test_node_removal_evicts_dependent_state(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=1, pool_size=4)
        engine.evaluate_forest([11, 12])
        engine.evaluate_forest([0, 33])
        engine.evaluate_exact([11])
        engine.evaluate_exact([0])
        graph.remove_node(11)
        engine.evaluate_forest([0, 33])
        assert (11, 12) not in engine._pools
        assert (11,) not in engine._trackers
        assert (0,) in engine._trackers
        assert engine.stats.node_evictions == 2
        # Surviving pools were flushed: their forests lived in the old
        # compact id space.
        assert engine.stats.pools_flushed >= 1
        with pytest.raises(InvalidNodeError):
            engine.evaluate_exact([11])

    def test_node_insertion_extends_pools_without_flush(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=1, pool_size=4)
        engine.evaluate_forest([0])
        pool = engine._pools[(0,)]
        event = graph.add_node([3, 5])
        engine.evaluate_forest([0])
        # The stored forests were extended with the new node as a leaf
        # (parent drawn among its attachments) instead of being flushed;
        # the missing internal stratum shows up as decayed weights.
        assert engine.stats.pools_flushed == 0
        assert pool.size == 4
        assert pool.n == graph.n
        new_column = graph.compact_index(event.node)
        attachments = set(graph.compact_nodes([3, 5]))
        kept = pool.batch()
        assert set(int(p) for p in kept.parent[:, new_column]) <= attachments
        assert np.all(pool.weights() <= 1.0) and np.any(pool.weights() < 1.0)
        for forest in kept:
            forest.validate_against(graph.snapshot())

    def test_forest_estimate_after_churn(self, small_ba):
        graph = DynamicGraph(small_ba)
        graph.remove_node(_removable_node(graph, avoid={0, 1}))
        engine = DynamicCFCM(graph, seed=0, pool_size=128)
        group = [0, 1]
        estimate = engine.evaluate_forest(group)
        exact = engine.evaluate_exact(group)
        assert estimate == pytest.approx(exact, rel=0.3)


class TestEngineSatellites:
    def test_exact_eval_counts_tracker_hits(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        engine.evaluate_exact([0, 1])
        assert engine.stats.eval_misses == 1 and engine.stats.eval_hits == 0
        engine.evaluate_exact([1, 0])  # same group, any order
        assert engine.stats.eval_hits == 1
        assert engine.stats.as_dict()["eval_hits"] == 1

    def test_engine_reports_batched_updates(self, small_ba):
        graph = DynamicGraph(small_ba)
        engine = DynamicCFCM(graph, seed=0)
        engine.evaluate_exact([0, 1])
        random_update_journal(graph, 12, np.random.default_rng(0))
        engine.evaluate_exact([0, 1])
        assert engine.stats.batch_updates == 1
        assert engine.stats.batched_events == 12

    def test_evaluate_flag_key_normalised(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        first = engine.query(2, method="degree", evaluate=True)
        second = engine.query(2, method="degree", evaluate="exact")
        assert second is first
        assert engine.stats.query_hits == 1
        assert engine.stats.query_misses == 1
        assert len(engine._query_cache) == 1


class TestNodeChurnWorkload:
    def test_churn_journal_preserves_invariants(self, small_ba):
        graph = DynamicGraph(small_ba)
        events = random_churn_journal(graph, 40, np.random.default_rng(7),
                                      node_probability=0.3)
        assert len(events) == 40
        assert graph.version == 40
        kinds = {event.kind for event in events}
        assert "add_node" in kinds or "remove_node" in kinds
        from repro.graph.traversal import is_connected

        assert is_connected(graph.snapshot())

    def test_node_event_fallback_between_kinds(self):
        # A 2-node graph cannot lose a node (minimum size guard), so a
        # removal draw falls back to an insertion.
        graph = DynamicGraph(generators.path_graph(2))
        event = apply_random_node_event(graph, np.random.default_rng(0),
                                        add_probability=0.0)
        assert event is not None and event.kind == "add_node"

    def test_protected_nodes_survive(self, small_ba):
        graph = DynamicGraph(small_ba)
        protected = [0, 5, 9]
        random_churn_journal(graph, 60, np.random.default_rng(11),
                             node_probability=0.6, add_probability=0.2,
                             protected=protected)
        for node in protected:
            assert graph.has_node(node)
