"""Tests for the resilience layer: fault injection, degradation, recovery."""

import asyncio
import time

import numpy as np
import pytest

from repro.dynamic import DynamicCFCM, DynamicGraph, IncrementalResistance
from repro.exceptions import (
    ConvergenceError,
    InjectedFaultError,
    InvalidParameterError,
    NumericalDriftError,
    ServiceDegradedError,
    ServiceOverloadedError,
)
from repro.graph import generators
from repro.linalg.backends import DenseResistanceBackend
from repro.resilience import (
    FAULT_REGIMES,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultRule,
    ResidualWatchdog,
    RetryPolicy,
)
from repro.service import AsyncCFCMService
from repro.utils.faultpoints import fault_point
from repro.worlds import FaultSpec, WorldSpec, faulted_smoke_specs, run_world
from repro.worlds.spec import ChurnSpec, EstimatorSpec, TrafficSpec

GROUP = (0, 1, 2)


def run(coroutine):
    return asyncio.run(coroutine)


def missing_edge(graph):
    """First absent (u, v) pair of the current topology."""
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if not graph.has_edge(u, v):
                return u, v
    raise AssertionError("graph is complete")


class TestFaultPlans:
    def test_regimes_round_trip(self):
        for regime in FAULT_REGIMES:
            plan = FaultPlan.for_regime(regime, rate=0.5, limit=3, seed=9)
            assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_site_and_regime_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultRule("backend.nope")
        with pytest.raises(InvalidParameterError):
            FaultPlan.for_regime("explosions")
        with pytest.raises(InvalidParameterError):
            FaultPlan(rules=(FaultRule("solver.cg"), FaultRule("solver.cg")))

    def test_injection_is_deterministic(self):
        plan = FaultPlan(
            rules=(FaultRule("solver.cg", probability=0.5, limit=None),),
            seed=123,
        )

        def drive():
            outcomes = []
            with FaultInjector(plan) as injector:
                for _ in range(40):
                    try:
                        fault_point("solver.cg")
                        outcomes.append(False)
                    except ConvergenceError:
                        outcomes.append(True)
            return outcomes, injector.total_injected

        first, count_a = drive()
        second, count_b = drive()
        assert first == second
        assert count_a == count_b == sum(first) > 0

    def test_limit_caps_injections(self):
        plan = FaultPlan(
            rules=(FaultRule("service.worker", probability=1.0, limit=2),),
            seed=0,
        )
        errors = 0
        with FaultInjector(plan) as injector:
            for _ in range(10):
                try:
                    fault_point("service.worker")
                except InjectedFaultError:
                    errors += 1
        assert errors == 2
        assert injector.injected == {"service.worker": 2}

    def test_injected_convergence_error_is_structured(self):
        plan = FaultPlan(
            rules=(FaultRule("solver.cg", probability=1.0, magnitude=0.5),),
            seed=0,
        )
        with FaultInjector(plan):
            with pytest.raises(ConvergenceError) as excinfo:
                fault_point("solver.cg")
        assert excinfo.value.iterations == 0
        assert excinfo.value.residual == 0.5

    def test_no_gate_means_no_faults(self):
        fault_point("solver.cg")  # no injector installed: a no-op


class TestWatchdog:
    def test_validation_and_state_round_trip(self):
        with pytest.raises(InvalidParameterError):
            ResidualWatchdog(threshold=0.0)
        with pytest.raises(InvalidParameterError):
            ResidualWatchdog(interval=-1)
        watchdog = ResidualWatchdog(threshold=1e-9, interval=2, seed=5)
        assert not watchdog.tick() and watchdog.tick()
        assert watchdog.record(1e-3, group="0,1")
        watchdog.count_trip()
        clone = ResidualWatchdog.from_state(watchdog.state_dict())
        assert clone.state_dict() == watchdog.state_dict()
        assert clone.pick_row(17) == watchdog.pick_row(17)

    def test_drift_detected_and_healed(self):
        base = generators.barabasi_albert(24, 2, seed=3)
        engine = DynamicCFCM(DynamicGraph(base), seed=0, backend="dense",
                             watchdog_interval=1, drift_threshold=1e-8)
        engine.evaluate_exact(GROUP)
        tracker = next(iter(engine._trackers.values()))
        assert tracker.watchdog is not None
        tracker.backend.inverse += 0.05  # corrupt the tracked inverse

        u, v = missing_edge(engine.graph)
        engine.graph.add_edge(u, v)
        healed = engine.evaluate_exact(GROUP)

        reference_graph = DynamicGraph(base)
        reference_graph.add_edge(u, v)
        reference = DynamicCFCM(reference_graph, seed=0,
                                backend="dense").evaluate_exact(GROUP)
        assert healed == pytest.approx(reference, rel=1e-10)
        assert tracker.watchdog.trips >= 1
        assert tracker.stats.drift_refreshes >= 1

    def test_verify_without_repair_raises_typed_drift_error(self):
        graph = DynamicGraph(generators.barabasi_albert(20, 2, seed=4))
        tracker = IncrementalResistance(graph, GROUP, backend="dense")
        tracker.sync()
        tracker.backend.inverse += 0.1
        with pytest.raises(NumericalDriftError) as excinfo:
            tracker.verify(threshold=1e-8, repair=False)
        assert excinfo.value.residual > excinfo.value.threshold == 1e-8


class TestFailover:
    def test_sparse_factorization_failure_fails_over_to_dense(self):
        graph = DynamicGraph(generators.barabasi_albert(24, 2, seed=6))
        tracker = IncrementalResistance(graph, GROUP, backend="sparse")
        tracker.sync()
        plan = FaultPlan(
            rules=(FaultRule("backend.factorize", probability=1.0, limit=1),),
            seed=0,
        )
        u, v = missing_edge(graph)
        with FaultInjector(plan) as injector:
            # A node event forces the sparse backend through a fresh
            # factorisation, which the injector breaks exactly once.
            graph.add_node([(u, 1.0), (v, 1.0)])
            value = tracker.group_cfcc()
        assert injector.total_injected == 1
        assert isinstance(tracker.backend, DenseResistanceBackend)
        assert tracker.stats.failovers == 1

        reference = IncrementalResistance(graph, GROUP,
                                          backend="dense").group_cfcc()
        assert value == pytest.approx(reference, rel=1e-10)

    def test_failed_sync_commits_nothing(self):
        base = generators.barabasi_albert(24, 2, seed=7)
        engine = DynamicCFCM(DynamicGraph(base), seed=2, backend="dense")
        engine.evaluate_exact(GROUP)
        tracker = next(iter(engine._trackers.values()))
        version_before = tracker.synced_version
        inverse_before = tracker.backend.inverse.copy()

        u, v = missing_edge(engine.graph)
        engine.graph.add_edge(u, v)

        original = tracker._apply_edge_batch

        def broken(batch):
            raise RuntimeError("injected mid-sync crash")

        tracker._apply_edge_batch = broken
        with pytest.raises(RuntimeError):
            engine.evaluate_exact(GROUP)
        # Nothing committed: same synced version, bit-identical inverse.
        assert tracker.synced_version == version_before
        np.testing.assert_array_equal(tracker.backend.inverse, inverse_before)

        # Recovery: the retried read matches a never-faulted engine exactly.
        tracker._apply_edge_batch = original
        recovered = engine.evaluate_exact(GROUP)
        clean_graph = DynamicGraph(base)
        clean = DynamicCFCM(clean_graph, seed=2, backend="dense")
        clean.evaluate_exact(GROUP)
        clean_graph.add_edge(u, v)
        assert recovered == clean.evaluate_exact(GROUP)


class TestPolicies:
    def test_retry_policy_bounds(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(deadline=0.0)
        policy = RetryPolicy(attempts=3, deadline=1.0)
        err = ConvergenceError("boom")
        assert policy.should_retry(err, 1, 0.1)
        assert policy.should_retry(err, 2, 0.1)
        assert not policy.should_retry(err, 3, 0.1)  # attempts exhausted
        assert not policy.should_retry(err, 1, 2.0)  # deadline exceeded
        assert not policy.should_retry(ValueError("x"), 1, 0.1)  # untyped

    def test_breaker_sheds_relaxed_only(self):
        breaker = CircuitBreaker(shed_fraction=0.5, failure_threshold=2,
                                 recovery_successes=1)
        # Overload: relaxed shed, fresh admitted.
        with pytest.raises(ServiceDegradedError):
            breaker.admit("relaxed", queue_depth=6, queue_limit=10)
        breaker.admit("fresh", queue_depth=6, queue_limit=10)
        # Calm queue: relaxed admitted again.
        breaker.admit("relaxed", queue_depth=0, queue_limit=10)
        # Consecutive failures open the breaker; successes close it.
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.open
        with pytest.raises(ServiceDegradedError):
            breaker.admit("relaxed", queue_depth=0, queue_limit=10)
        breaker.admit("fresh", queue_depth=0, queue_limit=10)
        breaker.record_success()
        assert not breaker.open
        assert breaker.shed == 2

    def test_breaker_validation(self):
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(shed_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(failure_threshold=0)


class TestServiceResilience:
    def test_submit_wait_timeout_validation(self):
        graph = generators.barabasi_albert(24, 2, seed=8)

        async def scenario():
            async with AsyncCFCMService(graph, seed=0) as service:
                with pytest.raises(InvalidParameterError):
                    await service.submit(lambda g: None, wait_timeout=0.0)

        run(scenario())

    def test_submit_wait_timeout_expires_then_succeeds(self):
        graph = generators.barabasi_albert(24, 2, seed=8)

        async def scenario():
            async with AsyncCFCMService(graph, seed=0,
                                        queue_limit=1) as service:
                await service.submit(lambda g: time.sleep(0.3))
                deadline = time.perf_counter() + 5.0
                while service.pending_updates > 0:  # writer picks sleeper up
                    assert time.perf_counter() < deadline
                    await asyncio.sleep(0.005)
                blocker = await service.submit(lambda g: None)  # queue full
                with pytest.raises(ServiceOverloadedError):
                    await service.submit(lambda g: None)
                with pytest.raises(ServiceOverloadedError):
                    await service.submit(lambda g: None, wait_timeout=0.01)
                # A generous timeout outlives the sleeper and gets through.
                ticket = await service.submit(lambda g: None, wait_timeout=5.0)
                await blocker.settled()
                await ticket.settled()
                assert ticket.exception() is None
                return service

        service = run(scenario())
        assert service.stats.updates_rejected == 2

    def test_retry_policy_absorbs_injected_worker_faults(self):
        graph = generators.barabasi_albert(24, 2, seed=9)
        plan = FaultPlan(
            rules=(FaultRule("service.worker", probability=1.0, limit=1),),
            seed=0,
        )

        async def scenario():
            async with AsyncCFCMService(
                graph, seed=0, retry_policy=RetryPolicy(attempts=3),
            ) as service:
                with FaultInjector(plan) as injector:
                    response = await service.evaluate(GROUP, mode="exact")
                return response.result, injector.total_injected

        value, injected = run(scenario())
        assert injected == 1
        reference = DynamicCFCM(DynamicGraph(graph),
                                seed=0).evaluate_exact(GROUP)
        assert value == pytest.approx(reference, rel=1e-10)

    def test_unretried_worker_fault_is_typed(self):
        graph = generators.barabasi_albert(24, 2, seed=9)
        plan = FaultPlan(
            rules=(FaultRule("service.worker", probability=1.0, limit=1),),
            seed=0,
        )

        async def scenario():
            async with AsyncCFCMService(graph, seed=0) as service:
                with FaultInjector(plan):
                    with pytest.raises(InjectedFaultError):
                        await service.evaluate(GROUP, mode="exact")
                response = await service.evaluate(GROUP, mode="exact")
                return response.result

        value = run(scenario())
        reference = DynamicCFCM(DynamicGraph(graph),
                                seed=0).evaluate_exact(GROUP)
        assert value == pytest.approx(reference, rel=1e-10)

    def test_open_breaker_sheds_relaxed_reads(self):
        graph = generators.barabasi_albert(24, 2, seed=10)

        async def scenario():
            breaker = CircuitBreaker(failure_threshold=1,
                                     recovery_successes=1)
            async with AsyncCFCMService(graph, seed=0,
                                        breaker=breaker) as service:
                breaker.record_failure()
                assert breaker.open
                with pytest.raises(ServiceDegradedError):
                    await service.evaluate(GROUP, mode="exact",
                                           consistency="relaxed")
                fresh = await service.evaluate(GROUP, mode="exact")
                assert not breaker.open  # fresh success closed it
                return fresh.result

        assert run(scenario()) > 0


class TestCheckpointRecovery:
    def test_checkpoint_restore_replay_is_bit_equal(self, tmp_path):
        base = generators.barabasi_albert(28, 2, seed=11)
        graph = DynamicGraph(base)
        engine = DynamicCFCM(graph, seed=4, pool_size=8, backend="dense")
        engine.evaluate_exact(GROUP)
        engine.evaluate_forest(GROUP)

        path = str(tmp_path / "engine.npz")
        engine.checkpoint(path)

        # Crash-and-restore replays the same post-checkpoint journal.
        u, v = missing_edge(graph)
        graph.add_edge(u, v)
        live_exact = engine.evaluate_exact(GROUP)
        live_forest = engine.evaluate_forest(GROUP)

        restored = DynamicCFCM.restore(path)
        restored.graph.add_edge(u, v)
        assert restored.evaluate_exact(GROUP) == live_exact
        assert restored.evaluate_forest(GROUP) == live_forest
        assert (restored.rng.bit_generator.state
                == engine.rng.bit_generator.state)

    def test_checkpoint_restore_sparse_backend(self, tmp_path):
        graph = DynamicGraph(generators.barabasi_albert(26, 2, seed=12))
        engine = DynamicCFCM(graph, seed=5, pool_size=8, backend="sparse")
        engine.evaluate_exact(GROUP)
        path = str(tmp_path / "engine.npz")
        engine.checkpoint(path)

        u, v = missing_edge(graph)
        graph.add_edge(u, v)
        live = engine.evaluate_exact(GROUP)

        restored = DynamicCFCM.restore(path)
        restored.graph.add_edge(u, v)
        assert restored.evaluate_exact(GROUP) == live

    def test_checkpoint_write_is_atomic(self, tmp_path):
        graph = DynamicGraph(generators.barabasi_albert(20, 2, seed=13))
        engine = DynamicCFCM(graph, seed=0, pool_size=4)
        engine.evaluate_exact(GROUP)
        path = tmp_path / "engine.npz"
        engine.checkpoint(str(path))
        assert path.exists()
        assert not path.with_suffix(".npz.tmp").exists()


class TestFaultedWorlds:
    def test_fault_spec_round_trip_and_name(self):
        spec = WorldSpec(
            topology="k_regular", n=32,
            churn=ChurnSpec(regime="mixed", events=6),
            traffic=TrafficSpec(mix="mixed"),
            estimator=EstimatorSpec(pool_size=8, max_samples=16,
                                    forest_tolerance=0.8),
            faults=FaultSpec(regime="solver_flaky", rate=1.0, limit=2),
            seed=21,
        )
        assert spec.name.endswith("-fsolver_flaky")
        assert WorldSpec.from_dict(spec.to_dict()) == spec
        # Legacy payloads without a faults axis still load as fault-free.
        legacy = spec.to_dict()
        legacy.pop("faults")
        assert WorldSpec.from_dict(legacy).faults == FaultSpec()
        with pytest.raises(InvalidParameterError):
            FaultSpec(regime="explosions").validate()
        with pytest.raises(InvalidParameterError):
            FaultSpec(rate=1.5).validate()

    def test_faulted_smoke_specs_overlay_regimes(self):
        specs = faulted_smoke_specs()
        assert len(specs) == 7
        assert all(spec.faults.active for spec in specs)
        service_specs = [s for s in specs if s.mode == "service"]
        assert all(s.faults.regime == "worker_crash" for s in service_specs)

    def test_faulted_run_world_answers_or_fails_typed(self):
        spec = WorldSpec(
            topology="k_regular", n=32,
            churn=ChurnSpec(regime="mixed", events=6),
            traffic=TrafficSpec(mix="mixed"),
            estimator=EstimatorSpec(pool_size=8, max_samples=16,
                                    forest_tolerance=0.8),
            faults=FaultSpec(regime="solver_flaky", rate=1.0, limit=2),
            seed=21,
        )
        row = run_world(spec)
        assert row["faults"] == "solver_flaky"
        assert row["faults_injected"] >= 1
        # The drive either answered every read or failed typed; the final
        # fault-free reads must land inside the accuracy gate either way.
        assert row["accuracy_ok"]
        assert row["typed_failures"] >= 0
