"""Tests for the lockstep vectorised forest sampler and ForestBatch kernels.

Covers the three contracts the batch sampler must honour:

* **Scalar regression** — the scalar sampler's fixed-seed output is locked,
  so vectorisation refactors cannot silently change the reference stream.
* **Structural equivalence** — every batched derived quantity (``root_of``,
  ``depths``, ``subtree_sums``, ``tree_sizes``) matches the per-forest
  :class:`repro.sampling.Forest` computation exactly, and the accumulator's
  batched fold reproduces the per-forest fold bit for bit.
* **Distributional equivalence** — a chi-square test checks the lockstep
  sampler's empirical root distribution against the exact absorption matrix
  of Lemma 4.2, at the same thresholds the scalar sampler is held to.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

import repro.sampling.batch as batch_module
from repro.centrality.estimators import ForestAccumulator, rademacher_weights
from repro.exceptions import DisconnectedGraphError, GraphError, InvalidParameterError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.linalg.schur import absorption_probabilities
from repro.sampling import (
    Forest,
    ForestBatch,
    sample_forest_batch_vectorized,
    sample_rooted_forest,
)
from repro.sampling.wilson import empirical_root_distribution

# Fixed-seed output of the scalar sampler on karate with roots={0}, seed=123.
# The lockstep kernel reuses scalar building blocks (e.g. the scalar finish);
# this regression pins the reference stream those blocks are validated against.
KARATE_SCALAR_PARENT_SEED123 = [
    -1, 19, 3, 1, 0, 16, 4, 3, 33, 33, 4, 0, 0, 3, 33, 32, 6, 0, 32, 0, 33, 0,
    32, 25, 31, 24, 33, 33, 33, 23, 1, 33, 30, 22,
]


class TestScalarRegression:
    def test_fixed_seed_output_locked(self, karate):
        forest = sample_rooted_forest(karate, [0], seed=123)
        assert forest.parent.tolist() == KARATE_SCALAR_PARENT_SEED123

    def test_forest_helpers_match_bruteforce(self, karate):
        forest = sample_rooted_forest(karate, [0, 33], seed=7)
        sizes = forest.tree_sizes()
        root_of = forest.root_of()
        for root in (0, 33):
            assert sizes[root] == int(np.sum(root_of == root))
        tin, tout = forest.euler_intervals()
        for node in range(karate.n):
            path = set(forest.path_to_root(node))
            for candidate in range(karate.n):
                assert forest.is_ancestor(candidate, node) == (candidate in path)


class TestLockstepValidity:
    def test_batch_forests_are_valid(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0, 33], 16, seed=0)
        assert batch.batch_size == 16 and batch.n == karate.n
        for forest in batch:
            forest.validate_against(karate)
        assert np.all(batch.tree_sizes().sum(axis=1) == karate.n)

    def test_reproducible_and_seed_sensitive(self, karate):
        a = sample_forest_batch_vectorized(karate, [0], 8, seed=42)
        b = sample_forest_batch_vectorized(karate, [0], 8, seed=42)
        c = sample_forest_batch_vectorized(karate, [0], 8, seed=43)
        assert np.array_equal(a.parent, b.parent)
        assert not np.array_equal(a.parent, c.parent)

    def test_samples_within_batch_differ(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0], 8, seed=1)
        assert not all(
            np.array_equal(batch.parent[0], batch.parent[i]) for i in range(1, 8)
        )

    def test_tree_graph_recovered(self):
        tree = generators.random_tree(30, seed=3)
        batch = sample_forest_batch_vectorized(tree, [0], 6, seed=4)
        for b in range(6):
            for node in range(1, 30):
                assert tree.has_edge(node, int(batch.parent[b, node]))

    def test_slow_mixing_graph_still_correct(self):
        ring = generators.watts_strogatz(120, 4, 0.05, seed=9)
        batch = sample_forest_batch_vectorized(ring, [0], 8, seed=2)
        for forest in batch:
            forest.validate_against(ring)

    def test_empty_batch(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0], 0, seed=0)
        assert batch.batch_size == 0
        assert batch.forests() == []

    def test_invalid_inputs(self, karate):
        with pytest.raises(InvalidParameterError):
            sample_forest_batch_vectorized(karate, [], 4, seed=0)
        with pytest.raises(InvalidParameterError):
            sample_forest_batch_vectorized(karate, [0], -1, seed=0)

    def test_disconnected_graph_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            sample_forest_batch_vectorized(graph, [0], 4, seed=0)

    def test_internal_chunking_matches_single_chunk_shape(self, karate, monkeypatch):
        monkeypatch.setattr(batch_module, "LOCKSTEP_STATE_LIMIT", 3 * karate.n)
        batch = sample_forest_batch_vectorized(karate, [0], 10, seed=5)
        assert batch.batch_size == 10
        for forest in batch:
            forest.validate_against(karate)

    def test_oversized_graph_falls_back_to_scalar(self, karate, monkeypatch):
        monkeypatch.setattr(batch_module, "LOCKSTEP_STATE_LIMIT", karate.n - 1)
        batch = sample_forest_batch_vectorized(karate, [0, 33], 3, seed=6)
        assert batch.batch_size == 3
        for forest in batch:
            forest.validate_against(karate)


class TestForestBatchKernels:
    def test_derived_quantities_match_per_forest(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0, 33], 10, seed=3)
        weights = rademacher_weights(4, karate.n, [0, 33],
                                     np.random.default_rng(0))
        root_of = batch.root_of()
        depths = batch.depths()
        sums = batch.subtree_sums(weights)
        ones = batch.subtree_sums(np.ones(karate.n))
        sizes = batch.tree_sizes()
        for i in range(batch.batch_size):
            forest = Forest(parent=batch.parent[i].copy(),
                            roots=batch.roots.copy())
            assert np.array_equal(forest.root_of(), root_of[i])
            assert np.array_equal(forest.depths(), depths[i])
            assert np.allclose(forest.subtree_sums(weights), sums[i])
            assert np.allclose(forest.subtree_sums(np.ones(karate.n)), ones[i])
            expected_sizes = forest.tree_sizes()
            for j, root in enumerate(batch.roots):
                assert int(sizes[i, j]) == expected_sizes[int(root)]

    def test_materialised_forests_carry_caches(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0], 4, seed=8)
        batch.root_of()  # prime the batched caches
        forest = batch[2]
        assert forest._root_of is not None
        forest.validate_against(karate)
        assert np.array_equal(forest.root_of(), batch.root_of()[2])

    def test_subtree_sums_rejects_bad_shapes(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0], 2, seed=0)
        with pytest.raises(GraphError):
            batch.subtree_sums(np.ones(karate.n + 1))

    def test_batch_validation_errors(self):
        with pytest.raises(GraphError):
            ForestBatch(parent=np.zeros(4, dtype=np.int64), roots=[0])
        with pytest.raises(GraphError):
            ForestBatch(parent=np.zeros((2, 4), dtype=np.int64), roots=[])
        with pytest.raises(GraphError):
            ForestBatch(parent=np.zeros((2, 4), dtype=np.int64), roots=[9])
        with pytest.raises(GraphError):  # root rows must hold -1
            ForestBatch(parent=np.zeros((2, 4), dtype=np.int64), roots=[0])

    def test_unreachable_node_detected(self):
        parent = np.array([[-1, 2, 1, 0]])  # 1 <-> 2 is a cycle
        batch = ForestBatch(parent=parent, roots=[0])
        with pytest.raises(GraphError):
            batch.root_of()

    def test_forest_index_bounds(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0], 2, seed=0)
        with pytest.raises(InvalidParameterError):
            batch.forest(2)


class TestAccumulatorBatchFold:
    def test_add_batch_matches_per_forest_fold(self, karate):
        roots = [0, 33]
        weights = rademacher_weights(5, karate.n, roots,
                                     np.random.default_rng(1))
        batch = sample_forest_batch_vectorized(karate, roots, 12, seed=2)

        one_by_one = ForestAccumulator(karate, roots, weights=weights,
                                       tracked_roots=[33], seed=0)
        for forest in batch:
            one_by_one.add_forest(forest)
        batched = ForestAccumulator(karate, roots, weights=weights,
                                    tracked_roots=[33], seed=0)
        batched.add_batch(batch)

        assert batched.count == one_by_one.count == 12
        assert np.allclose(batched.projected_sum, one_by_one.projected_sum)
        assert np.allclose(batched.diag_sum, one_by_one.diag_sum)
        assert np.allclose(batched.diag_sumsq, one_by_one.diag_sumsq)
        assert np.allclose(batched.root_counts, one_by_one.root_counts)

    def test_add_batch_validates_roots_and_size(self, karate):
        accumulator = ForestAccumulator(karate, [0], seed=0)
        wrong_roots = sample_forest_batch_vectorized(karate, [0, 33], 2, seed=0)
        with pytest.raises(InvalidParameterError):
            accumulator.add_batch(wrong_roots)
        small = generators.barabasi_albert(10, 2, seed=0)
        wrong_size = sample_forest_batch_vectorized(small, [0], 2, seed=0)
        with pytest.raises(InvalidParameterError):
            accumulator.add_batch(wrong_size)

    def test_add_samples_uses_vectorised_chunks(self, karate):
        accumulator = ForestAccumulator(karate, [0], seed=0)
        accumulator.add_samples(17)
        assert accumulator.count == 17
        estimates = accumulator.diag_estimates()
        assert np.all(estimates[1:] > 0.0)  # non-root diagonals are positive


def _exact_full_absorption(graph, grounded, boundary):
    """Exact ``(interior, roots)`` rooted-at probabilities over all roots."""
    roots = sorted(grounded + boundary)
    exact_boundary, interior = absorption_probabilities(graph, grounded, boundary)
    exact = np.zeros((len(interior), len(roots)))
    column = {root: i for i, root in enumerate(roots)}
    for j, t in enumerate(boundary):
        exact[:, column[t]] = exact_boundary[:, j]
    for g in grounded:
        # One grounded root: its column absorbs the remaining mass.
        exact[:, column[g]] = 1.0 - exact_boundary.sum(axis=1)
    return roots, exact, interior


class TestDistributionalEquivalence:
    """Lemma 4.2 chi-square suite: both samplers draw the same distribution."""

    SAMPLES = 2000
    # Per-node multinomial chi-square against the exact absorption row; the
    # 0.9999 quantile keeps the fixed-seed test deterministic yet sharp
    # enough that a biased sampler (e.g. a broken popping schedule) fails.
    QUANTILE = 0.9999

    @pytest.mark.parametrize("method", ["lockstep", "scalar"])
    def test_root_distribution_chi_square(self, karate, method):
        roots, exact, interior = _exact_full_absorption(karate, [0], [32, 33])
        empirical = empirical_root_distribution(
            karate, roots, self.SAMPLES, seed=11, method=method
        )
        observed = empirical[interior] * self.SAMPLES
        expected = exact * self.SAMPLES
        for i in range(len(interior)):
            mask = expected[i] > 1e-9
            chi2 = float(np.sum(
                (observed[i, mask] - expected[i, mask]) ** 2 / expected[i, mask]
            ))
            dof = max(int(mask.sum()) - 1, 1)
            assert chi2 < scipy_stats.chi2.ppf(self.QUANTILE, dof), (
                f"node {interior[i]} ({method}): chi2={chi2:.2f}"
            )

    @pytest.mark.parametrize("method", ["lockstep", "scalar"])
    def test_root_distribution_tolerances_match_scalar_suite(self, karate, method):
        # Same tolerances as the historical scalar-sampler absorption test.
        roots, exact, interior = _exact_full_absorption(karate, [0], [32, 33])
        empirical = empirical_root_distribution(
            karate, roots, 800, seed=7, method=method
        )
        observed = empirical[interior]
        assert np.max(np.abs(observed - exact)) < 0.1
        assert np.mean(np.abs(observed - exact)) < 0.03

    def test_cycle_spanning_trees_uniform(self):
        """On a cycle, each spanning tree (one removed edge) is equally likely."""
        cycle = generators.cycle_graph(5)
        samples = 600
        batch = sample_forest_batch_vectorized(cycle, [0], samples, seed=0)
        counts: dict = {}
        for b in range(samples):
            parent = batch.parent[b]
            missing = tuple(sorted(
                edge for edge in cycle.edges()
                if parent[edge[0]] != edge[1] and parent[edge[1]] != edge[0]
            ))
            counts[missing] = counts.get(missing, 0) + 1
        assert len(counts) == 5
        for value in counts.values():
            assert value > samples / 5 * 0.5

    def test_empirical_distribution_method_validation(self, karate):
        with pytest.raises(InvalidParameterError):
            empirical_root_distribution(karate, [0], 10, seed=0, method="bogus")

    def test_empirical_distribution_rows_sum_to_one(self, karate):
        empirical = empirical_root_distribution(karate, [0, 33], 50, seed=1)
        assert np.allclose(empirical.sum(axis=1), 1.0)
