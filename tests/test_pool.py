"""Tests for the importance-weighted forest-pool subsystem.

Covers three layers:

* :class:`repro.sampling.WeightedForestPool` unit behaviour (weight updates,
  ESS accounting, refresh planning, eviction);
* distributional correctness of the per-event importance updates, checked
  with chi-square / tolerance suites against exactly enumerable rooted-forest
  distributions on small graphs;
* the :class:`repro.dynamic.DynamicCFCM` integration: churn (including node
  insertions) never flushes pools, the reweighted + topped-up pool estimate
  stays within tolerance of a fresh engine replayed to the same version, and
  LRU pool eviction is observable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.centrality.estimators import ForestAccumulator, rademacher_weights
from repro.dynamic import DynamicCFCM, DynamicGraph
from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.sampling import WeightedForestPool
from repro.sampling.batch import ForestBatch, sample_forest_batch_vectorized
from repro.sampling.pool import edge_inclusion_prior, node_internal_prior


def _complete_graph(n: int) -> Graph:
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def _fresh_pool(graph: Graph, roots, capacity: int, seed: int) -> WeightedForestPool:
    pool = WeightedForestPool(roots, capacity=capacity)
    pool.admit(sample_forest_batch_vectorized(graph, roots, capacity, seed=seed))
    return pool


# ---------------------------------------------------------------------------
# ForestBatch helpers
# ---------------------------------------------------------------------------

class TestForestBatchHelpers:
    def test_uses_edge_matches_per_forest_check(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0, 33], 24, seed=3)
        mask = batch.uses_edge(2, 3)
        for row, forest in enumerate(batch):
            expected = forest.parent[2] == 3 or forest.parent[3] == 2
            assert bool(mask[row]) == bool(expected)
        with pytest.raises(InvalidParameterError):
            batch.uses_edge(0, karate.n)

    def test_select_carries_caches(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0], 8, seed=1)
        batch.root_of()  # populate caches
        subset = batch.select(np.array([1, 3, 5]))
        assert subset.batch_size == 3
        assert np.array_equal(subset.parent, batch.parent[[1, 3, 5]])
        assert subset._root_of is not None
        assert np.array_equal(subset.depths(), batch.depths()[[1, 3, 5]])

    def test_with_leaf_extends_consistently(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0], 6, seed=2)
        batch.depths()
        leaf_parents = np.full(6, 5, dtype=np.int64)
        grown = batch.with_leaf(leaf_parents)
        assert grown.n == karate.n + 1
        assert np.all(grown.parent[:, -1] == 5)
        # Carried caches must equal a from-scratch recompute.
        recomputed = ForestBatch(parent=grown.parent.copy(), roots=grown.roots)
        assert np.array_equal(grown.depths(), recomputed.depths())
        assert np.array_equal(grown.root_of(), recomputed.root_of())
        with pytest.raises(InvalidParameterError):
            batch.with_leaf(np.zeros(3, dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            batch.with_leaf(np.full(6, karate.n, dtype=np.int64))

    def test_from_forests_and_concatenate(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0], 4, seed=4)
        rebuilt = ForestBatch.from_forests(batch.forests())
        assert np.array_equal(rebuilt.parent, batch.parent)
        double = ForestBatch.concatenate([batch, rebuilt])
        assert double.batch_size == 8
        other_roots = sample_forest_batch_vectorized(karate, [1], 2, seed=4)
        with pytest.raises(InvalidParameterError):
            ForestBatch.concatenate([batch, other_roots])
        with pytest.raises(InvalidParameterError):
            ForestBatch.from_forests([])


# ---------------------------------------------------------------------------
# WeightedForestPool unit behaviour
# ---------------------------------------------------------------------------

class TestWeightedForestPool:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            WeightedForestPool([], capacity=4)
        with pytest.raises(InvalidParameterError):
            WeightedForestPool([0], capacity=0)
        with pytest.raises(InvalidParameterError):
            WeightedForestPool([0], capacity=4, ess_floor=1.5)
        pool = WeightedForestPool([0], capacity=4)
        assert pool.size == 0 and pool.ess() == 0.0 and pool.n is None
        with pytest.raises(InvalidParameterError):
            pool.batch()

    def test_admit_validates_roots_and_size(self, karate):
        pool = _fresh_pool(karate, [0], 4, seed=0)
        wrong_roots = sample_forest_batch_vectorized(karate, [1], 2, seed=0)
        with pytest.raises(InvalidParameterError):
            pool.admit(wrong_roots)
        small = generators.barabasi_albert(10, 2, seed=0)
        with pytest.raises(InvalidParameterError):
            pool.admit(sample_forest_batch_vectorized(small, [0], 2, seed=0))
        # Forest lists (the process-pool sampler contract) are accepted too.
        extra = sample_forest_batch_vectorized(karate, [0], 2, seed=9)
        assert pool.admit(extra.forests()) == 2
        assert pool.size == 4  # eviction respected capacity

    def test_removal_drops_exactly_users(self, karate):
        pool = _fresh_pool(karate, [0, 33], 32, seed=1)
        users = int(np.count_nonzero(pool.batch().uses_edge(2, 3)))
        dropped = pool.apply_removal(2, 3)
        assert dropped == users
        assert pool.size == 32 - users
        assert not np.any(pool.batch().uses_edge(2, 3))
        # Survivors keep full weight: the conditioning is exact.
        assert pool.weights() == pytest.approx(np.ones(pool.size))

    def test_addition_decays_uniformly_and_ess_tracks_it(self, karate):
        pool = _fresh_pool(karate, [0], 10, seed=2)
        assert pool.ess() == pytest.approx(10.0)
        assert pool.apply_addition(0.4) == 10
        assert pool.weights() == pytest.approx(np.full(10, 0.6))
        # Kish ESS is invariant under uniform scaling; the fidelity cap is
        # what makes a uniformly stale pool report reduced effective size.
        assert pool.ess() == pytest.approx(6.0)

    def test_reweight_applies_exact_ratio_and_roundtrip_cancels(self, karate):
        pool = _fresh_pool(karate, [0], 16, seed=3)
        users = int(np.count_nonzero(pool.batch().uses_edge(0, 1)))
        assert pool.apply_reweight(0, 1, 2.0) == users
        weights = pool.weights()
        assert np.count_nonzero(weights > 1.0) == users
        assert pool.apply_reweight(0, 1, 0.5) == users
        assert pool.weights() == pytest.approx(np.ones(16))
        with pytest.raises(InvalidParameterError):
            pool.apply_reweight(0, 1, 0.0)

    def test_dead_forests_are_dropped(self, karate):
        pool = _fresh_pool(karate, [0], 8, seed=4)
        edge = next(
            (u, v) for u, v in zip(karate.edge_u, karate.edge_v)
            if 0 < np.count_nonzero(pool.batch().uses_edge(u, v)) < 8
        )
        users = int(np.count_nonzero(pool.batch().uses_edge(*edge)))
        pool.apply_reweight(*edge, 1e-40)
        assert pool.size == 8 - users  # below DEAD_LOG_WEIGHT: gone
        # The deaths are observable for stats consumers, exactly once.
        assert pool.take_dead_drops() == users
        assert pool.take_dead_drops() == 0

    def test_addition_reports_full_reweight_count_despite_deaths(self, karate):
        pool = _fresh_pool(karate, [0], 8, seed=4)
        pool.apply_reweight(0, 2, 1e-25)  # users sink near the dead line
        sunk = int(np.count_nonzero(pool.weights() < 1e-20))
        survivors = pool.size
        # The decay reweights every stored forest, even the ones it kills.
        assert pool.apply_addition(0.99) == survivors
        assert pool.take_dead_drops() == sunk
        assert pool.size == survivors - sunk

    def test_plan_refresh_covers_deficit_and_ess_floor(self, karate):
        pool = _fresh_pool(karate, [0], 10, seed=5)
        assert pool.plan_refresh() == 0
        pool.apply_addition(0.4)  # ess 6.0 >= floor 5.0
        assert pool.plan_refresh() == 0
        pool.apply_addition(0.4)  # ess 3.6 < floor
        assert pool.plan_refresh() == 10 - 3
        pool.admit(sample_forest_batch_vectorized(karate, [0], 7, seed=6))
        assert pool.size == 10
        # The lowest-weight (stale) forests were evicted for the fresh ones.
        assert np.count_nonzero(pool.weights() == 1.0) == 7
        assert pool.ess() == pytest.approx(3 * 0.36 + 7.0)
        assert pool.plan_refresh() == 0

    def test_extend_leaf_attaches_weighted_parents(self, karate):
        pool = _fresh_pool(karate, [0], 400, seed=7)
        rng = np.random.default_rng(11)
        extended = pool.extend_leaf([3, 5], [3.0, 1.0], 0.2, rng)
        assert extended == 400
        assert pool.n == karate.n + 1
        column = pool.batch().parent[:, -1]
        assert set(int(p) for p in column) <= {3, 5}
        fraction = np.mean(column == 3)
        assert fraction == pytest.approx(0.75, abs=0.07)
        assert pool.weights() == pytest.approx(np.full(400, 0.8))

    def test_health_snapshot(self, karate):
        pool = _fresh_pool(karate, [0], 8, seed=8)
        pool.apply_addition(0.25)
        health = pool.health()
        assert health["size"] == 8.0
        assert health["capacity"] == 8.0
        assert health["ess"] == pytest.approx(6.0)
        assert health["stale_fraction"] == pytest.approx(0.25)

    def test_priors_are_capped(self):
        assert edge_inclusion_prior(1, 1) == 0.5
        assert edge_inclusion_prior(10, 10) == pytest.approx(0.2)
        assert node_internal_prior([1, 1, 1]) == 0.75
        assert node_internal_prior([8, 8]) == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Distributional correctness of the importance updates
# ---------------------------------------------------------------------------

def _tree_categories(batch: ForestBatch) -> dict:
    """Weighted counts of distinct parent tuples (rooted tree shapes)."""
    counts: dict = {}
    for row in batch.parent:
        counts[tuple(int(p) for p in row)] = counts.get(tuple(int(p) for p in row), 0) + 1
    return counts


class TestDistributionalCorrectness:
    """Chi-square / tolerance checks on exactly enumerable distributions."""

    def test_removal_conditioning_is_uniform_chi_square(self):
        # K4 rooted at {0} has 16 spanning trees; 8 avoid edge (2, 3).  The
        # survivors of apply_removal must be uniform over those 8.
        graph = _complete_graph(4)
        pool = _fresh_pool(graph, [0], 6000, seed=13)
        pool.apply_removal(2, 3)
        counts = _tree_categories(pool.batch())
        assert len(counts) == 8
        total = sum(counts.values())
        expected = total / 8.0
        chi_square = sum((c - expected) ** 2 / expected for c in counts.values())
        assert chi_square < 24.3  # chi2(7 dof) at p ~ 0.001

    def test_reweight_matches_weighted_tree_distribution(self):
        # Reweight edge (1, 2) to w = 2: the target law is P(T) ∝ 2^[e ∈ T].
        # K4: 8 trees contain the edge (mass 2 each), 8 do not (mass 1).
        graph = _complete_graph(4)
        pool = _fresh_pool(graph, [0], 6000, seed=17)
        pool.apply_reweight(1, 2, 2.0)
        weights = pool.weights()
        batch = pool.batch()
        users = batch.uses_edge(1, 2)
        mass_users = float(weights[users].sum())
        mass_rest = float(weights[~users].sum())
        share = mass_users / (mass_users + mass_rest)
        assert share == pytest.approx(16.0 / 24.0, abs=0.03)
        # Within each stratum the trees stay uniform.
        counts = _tree_categories(batch.select(users))
        assert len(counts) == 8
        total = sum(counts.values())
        chi_square = sum((c - total / 8.0) ** 2 / (total / 8.0)
                         for c in counts.values())
        assert chi_square < 24.3

    def test_extend_leaf_is_uniform_over_the_leaf_stratum(self):
        # Triangle rooted at {0} has 3 spanning trees; attaching node 3 to
        # {0, 1} as a leaf gives 6 equally likely (tree, parent) pairs.
        graph = _complete_graph(3)
        pool = _fresh_pool(graph, [0], 6000, seed=19)
        rng = np.random.default_rng(23)
        pool.extend_leaf([0, 1], [1.0, 1.0], 0.3, rng)
        counts = _tree_categories(pool.batch())
        assert len(counts) == 6
        total = sum(counts.values())
        chi_square = sum((c - total / 6.0) ** 2 / (total / 6.0)
                         for c in counts.values())
        assert chi_square < 20.5  # chi2(5 dof) at p ~ 0.001
        grown = Graph(4, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        pool.batch().forest(0).validate_against(grown)


# ---------------------------------------------------------------------------
# Weight-aware batched estimator fold
# ---------------------------------------------------------------------------

class TestWeightedBatchedFold:
    @pytest.mark.parametrize("graph_name", ["karate", "grid5x5"])
    def test_batched_fold_matches_scalar_reference(self, graph_name, request):
        graph = request.getfixturevalue(graph_name)
        roots = [0, graph.n - 1]
        jl = rademacher_weights(4, graph.n, roots, np.random.default_rng(0))
        batch = sample_forest_batch_vectorized(graph, roots, 15, seed=5)
        forest_weights = np.random.default_rng(1).uniform(0.05, 2.0, 15)

        scalar = ForestAccumulator(graph, roots, weights=jl,
                                   tracked_roots=[roots[1]], seed=0)
        scalar.add_batch(batch, weights=forest_weights, method="scalar")
        batched = ForestAccumulator(graph, roots, weights=jl,
                                    tracked_roots=[roots[1]], seed=0)
        batched.add_batch(batch, weights=forest_weights)

        assert batched.count == pytest.approx(scalar.count)
        np.testing.assert_allclose(batched.projected_sum, scalar.projected_sum,
                                   atol=1e-9)
        np.testing.assert_allclose(batched.diag_sum, scalar.diag_sum, atol=1e-9)
        np.testing.assert_allclose(batched.diag_sumsq, scalar.diag_sumsq,
                                   atol=1e-9)
        np.testing.assert_allclose(batched.root_counts, scalar.root_counts,
                                   atol=1e-9)

    def test_weighted_fold_equals_repeated_fold(self, karate):
        batch = sample_forest_batch_vectorized(karate, [0], 3, seed=6)
        doubled = ForestAccumulator(karate, [0], seed=0)
        doubled.add_batch(batch, weights=np.array([2.0, 2.0, 2.0]))
        repeated = ForestAccumulator(karate, [0], seed=0)
        for forest in batch:
            repeated.add_forest(forest)
            repeated.add_forest(forest)
        assert doubled.count == pytest.approx(repeated.count)
        np.testing.assert_allclose(doubled.diag_sum, repeated.diag_sum,
                                   atol=1e-9)
        np.testing.assert_allclose(doubled.diag_estimates(),
                                   repeated.diag_estimates(), atol=1e-12)

    def test_weight_validation(self, karate):
        accumulator = ForestAccumulator(karate, [0], seed=0)
        batch = sample_forest_batch_vectorized(karate, [0], 3, seed=7)
        with pytest.raises(InvalidParameterError):
            accumulator.add_batch(batch, weights=np.ones(2))
        with pytest.raises(InvalidParameterError):
            accumulator.add_batch(batch, weights=np.array([1.0, -1.0, 1.0]))
        with pytest.raises(InvalidParameterError):
            accumulator.add_batch(batch, method="quantum")


# ---------------------------------------------------------------------------
# Engine integration: churn without flushes, tolerance vs fresh references
# ---------------------------------------------------------------------------

def _apply_churn(graph: DynamicGraph, rng: np.random.Generator, steps: int):
    """Random edge churn plus occasional node insertions (never removals).

    Returns the journal events applied, so callers can replay them onto a
    fresh graph even after the engine compacted the original journal.
    """
    events = []
    for _ in range(steps):
        move = rng.random()
        nodes = [int(v) for v in graph.node_ids()]
        if move < 0.2:
            attach = rng.choice(nodes, size=2, replace=False)
            events.append(graph.add_node([int(attach[0]), int(attach[1])]))
        elif move < 0.6:
            for _ in range(20):
                u, v = (int(x) for x in rng.choice(nodes, size=2, replace=False))
                if not graph.has_edge(u, v):
                    events.append(graph.add_edge(u, v))
                    break
        else:
            edges = list(graph.edges())
            for index in rng.permutation(len(edges)):
                u, v = edges[int(index)]
                try:
                    events.append(graph.remove_edge(u, v))
                    break
                except Exception:
                    continue
    return events


class TestEngineImportanceCorrectness:
    def test_insertion_churn_never_flushes_and_matches_fresh_engine(self):
        """Acceptance: add_node + edge events keep reweighted forests pooled
        while the estimate tracks a fresh engine replayed to the same
        version."""
        base = generators.barabasi_albert(70, 2, seed=5)
        graph = DynamicGraph(base)
        engine = DynamicCFCM(graph, seed=9, pool_size=160)
        group = [0, 1]
        engine.evaluate_forest(group)
        pool = engine._pools[(0, 1)]

        rng = np.random.default_rng(41)
        events = []
        for _ in range(4):
            events.extend(_apply_churn(graph, rng, 5))
            engine.evaluate_forest(group)

        # The pool survived every insertion with reweighted forests, bounded
        # by the ESS policy.
        assert engine.stats.pools_flushed == 0
        assert engine.stats.forests_reweighted > 0
        assert pool.size == 160
        assert pool.ess() >= engine.ess_floor * 160 - 1e-9
        assert np.any(pool.weights() < 1.0)  # reweighted forests retained

        # Replay the same events onto a fresh graph and compare against a
        # fresh engine (fresh pool) and the exact value at the same version.
        from repro.dynamic import apply_event

        replayed = DynamicGraph(base)
        for event in events:
            apply_event(replayed, event)
        assert replayed.version == graph.version

        estimate = engine.evaluate_forest(group)
        exact = engine.evaluate_exact(group)
        fresh_engine = DynamicCFCM(replayed, seed=123, pool_size=160)
        fresh_estimate = fresh_engine.evaluate_forest(group)
        assert estimate == pytest.approx(exact, rel=0.2)
        assert fresh_estimate == pytest.approx(exact, rel=0.2)
        assert estimate == pytest.approx(fresh_estimate, rel=0.3)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_churn_tolerance(self, seed):
        base = generators.barabasi_albert(50, 2, seed=100 + seed)
        graph = DynamicGraph(base)
        engine = DynamicCFCM(graph, seed=seed, pool_size=192)
        group = [0, 2]
        rng = np.random.default_rng(seed)
        for _ in range(3):
            _apply_churn(graph, rng, 6)
            estimate = engine.evaluate_forest(group)
            exact = engine.evaluate_exact(group)
            assert estimate == pytest.approx(exact, rel=0.2)
        assert engine.stats.pools_flushed == 0

    def test_ess_floor_trigger_refreshes_stale_mass(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=3, pool_size=32, ess_floor=0.75)
        engine.evaluate_forest([0])
        pool = engine._pools[(0,)]
        candidates = [(u, v) for u in range(4, 20) for v in range(21, 34)
                      if not graph.has_edge(u, v)]
        for u, v in candidates:
            graph.add_edge(u, v)
            engine.evaluate_forest([0])
            if engine.stats.ess_topups:
                break
        assert engine.stats.ess_topups >= 1
        assert pool.ess() >= 0.75 * 32 - 1e-9
        assert np.count_nonzero(pool.weights() == 1.0) > 0


class TestTraceCache:
    """The per-forest trace cache must never change what is computed."""

    def test_cached_evaluation_matches_full_refold(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=2, pool_size=24)
        engine.evaluate_forest([0])
        graph.add_edge(15, 20)  # decay only: every cached trace stays valid
        cached_value = engine.evaluate_forest([0])
        pool = engine._pools[(0,)]
        folded = engine.stats.forests_folded
        # Recompute everything from scratch against the same path system.
        from repro.centrality.estimators import batched_diag_estimates

        path = engine._paths[(0,)]
        diag = batched_diag_estimates(pool.batch().parent, path)
        weights = pool.weights()
        trace = float(weights @ diag.sum(axis=1)) / float(weights.sum())
        assert cached_value == pytest.approx(graph.n / trace, rel=1e-12)
        # And the cache really did avoid refolding the retained forests:
        # every fold so far was for a freshly drawn forest.
        assert folded == engine.stats.forests_resampled

    def test_insertion_extends_traces_without_refold(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=4, pool_size=16)
        engine.evaluate_forest([0])
        folded_before = engine.stats.forests_folded
        resampled_before = engine.stats.forests_resampled
        graph.add_node([3, 5])
        engine.evaluate_forest([0])
        # Only freshly drawn forests were folded: the retained forests'
        # traces gained the new node's column via the single-column walk.
        fresh = engine.stats.forests_resampled - resampled_before
        assert engine.stats.forests_folded - folded_before == fresh

    def test_stale_path_never_outlives_an_emptied_pool(self, karate):
        """Regression: a coalesced burst that empties a pool, inserts a node
        (skipping the empty pool's extension) and then removes one of the
        new node's edges used to index the stale path system out of bounds.
        """
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=6, pool_size=1)
        engine.evaluate_forest([0])
        pool = engine._pools[(0,)]
        path = engine._paths[(0,)]
        # Empty the pool with a removal the path system does not use.
        edge = next(
            (u, v) for u, v in zip(karate.edge_u, karate.edge_v)
            if bool(pool.batch().uses_edge(u, v)[0]) and not path.uses_edge(u, v)
            and graph.has_edge(u, v)
        )
        graph.remove_edge(*edge)
        event = graph.add_node([3, 5])      # skipped: the pool is empty
        graph.remove_edge(event.node, 3)    # touches the new node's id
        value = engine.evaluate_forest([0])  # must not raise
        assert value > 0.0
        assert (0,) in engine._paths
        assert engine._paths[(0,)].n == graph.n

    def test_path_edge_removal_invalidates_traces(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=5, pool_size=8)
        engine.evaluate_forest([0])
        path = engine._paths[(0,)]
        # Remove an edge the path system uses: every cached trace must go.
        edge = next((u, v) for u, v in zip(karate.edge_u, karate.edge_v)
                    if path.uses_edge(u, v) and graph.has_edge(u, v))
        graph.remove_edge(*edge)
        engine.sync()
        assert (0,) not in engine._paths
        pool = engine._pools[(0,)]
        assert not np.any(pool.trace_valid)
        value = engine.evaluate_forest([0])
        exact = engine.evaluate_exact([0])
        assert value == pytest.approx(exact, rel=0.5)


class TestSamplerContract:
    def test_refill_accepts_generator_samplers(self, karate):
        from repro.sampling import sample_forest_batch

        engine = DynamicCFCM(DynamicGraph(karate), seed=0, pool_size=4)

        def sampler(snapshot, roots, count, seed):
            # A lazy iterator is a valid return under the documented
            # contract; it must only be consumed once.
            return iter(sample_forest_batch(snapshot, roots, count, seed=seed))

        assert engine.refill_pool([0], sampler=sampler) == 4
        assert engine._pools[(0,)].size == 4

    def test_refill_accepts_forest_batch_samplers(self, karate):
        engine = DynamicCFCM(DynamicGraph(karate), seed=0, pool_size=4)

        def sampler(snapshot, roots, count, seed):
            return sample_forest_batch_vectorized(snapshot, roots, count,
                                                  seed=seed)

        assert engine.refill_pool([0], sampler=sampler) == 4
        assert engine.evaluate_forest([0]) > 0.0


class TestDeprecationShim:
    def test_max_drift_warns_and_is_ignored(self, karate):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine = DynamicCFCM(DynamicGraph(karate), seed=0, max_drift=5)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert engine.max_drift == 5  # introspection only
        # The ESS policy runs regardless: insertions do not flush.
        engine.evaluate_forest([0])
        engine.graph.add_edge(15, 20)
        engine.evaluate_forest([0])
        assert engine.stats.pools_flushed == 0

    def test_invalid_max_drift_still_rejected(self, karate):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(InvalidParameterError):
                DynamicCFCM(DynamicGraph(karate), seed=0, max_drift=-1)


class TestLRUPoolEviction:
    def test_eviction_records_stat_and_drops_health_state(self, karate):
        engine = DynamicCFCM(DynamicGraph(karate), seed=0, pool_size=4,
                             cache_capacity=2)
        engine.evaluate_forest([0])
        engine.evaluate_forest([1])
        assert engine.stats.pools_evicted == 0
        engine.evaluate_forest([2])
        # The LRU pool (roots {0}) was evicted: stat recorded, health and
        # cursor state dropped instead of lingering silently.
        assert engine.stats.pools_evicted == 1
        assert set(engine._pools) == {(1,), (2,)}
        assert set(engine.stats.pool_ess) == {"1", "2"}
        # A re-query rebuilds the pool from scratch (and evicts the next LRU).
        engine.evaluate_forest([0])
        assert engine.stats.pools_evicted == 2
        assert set(engine.stats.pool_ess) == {"2", "0"}
        assert engine._pools[(0,)].size == 4

    def test_evicted_pool_does_not_pin_health_after_sync(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=0, pool_size=4, cache_capacity=1)
        engine.evaluate_forest([0])
        engine.evaluate_forest([1])  # evicts pool {0}
        graph.add_edge(15, 20)
        engine.sync()
        assert set(engine.stats.pool_ess) == {"1"}
