"""Tests for the dynamic-graph engine (repro.dynamic)."""

import numpy as np
import pytest

import repro
from repro.centrality.cfcc import group_cfcc, grounded_trace
from repro.dynamic import (
    DynamicCFCM,
    DynamicGraph,
    IncrementalResistance,
    apply_random_update,
    random_update_journal,
)
from repro.exceptions import (
    DisconnectedGraphError,
    GraphError,
    InvalidParameterError,
)
from repro.graph import generators
from repro.linalg.updates import grounded_inverse_edge_update


class TestDynamicGraph:
    def test_initial_state_mirrors_seed_graph(self, karate):
        graph = DynamicGraph(karate)
        assert graph.n == karate.n
        assert graph.m == karate.m
        assert graph.version == 0
        assert graph.is_unit_weighted
        assert graph.snapshot() is karate

    def test_add_edge_journals_and_bumps_version(self, path4):
        graph = DynamicGraph(path4)
        event = graph.add_edge(0, 3)
        assert graph.has_edge(0, 3) and graph.has_edge(3, 0)
        assert graph.version == 1
        assert event.kind == "add" and event.delta == 1.0 and event.version == 1
        assert graph.journal() == (event,)

    def test_add_existing_or_self_loop_rejected(self, path4):
        graph = DynamicGraph(path4)
        with pytest.raises(GraphError):
            graph.add_edge(0, 1)
        with pytest.raises(GraphError):
            graph.add_edge(2, 2)
        assert graph.version == 0

    def test_remove_edge(self, cycle5):
        graph = DynamicGraph(cycle5)
        event = graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert event.kind == "remove" and event.delta == -1.0
        assert graph.m == cycle5.m - 1

    def test_remove_missing_edge_rejected(self, path4):
        graph = DynamicGraph(path4)
        with pytest.raises(GraphError):
            graph.remove_edge(0, 2)

    def test_connectivity_guard_rejects_bridge_removal(self, path4):
        graph = DynamicGraph(path4)
        with pytest.raises(DisconnectedGraphError):
            graph.remove_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert graph.version == 0  # rejected edits leave no journal trace

    def test_update_weight_journals_delta(self, cycle5):
        graph = DynamicGraph(cycle5)
        event = graph.update_weight(0, 1, 2.5)
        assert event.kind == "reweight" and event.delta == pytest.approx(1.5)
        assert graph.weight(0, 1) == pytest.approx(2.5)
        assert not graph.is_unit_weighted
        assert graph.update_weight(0, 1, 2.5) is None  # no-op, no version bump
        assert graph.version == 1
        with pytest.raises(InvalidParameterError):
            graph.update_weight(0, 1, -1.0)

    def test_snapshot_rebuilds_and_caches_per_version(self, cycle5):
        graph = DynamicGraph(cycle5)
        graph.add_edge(0, 2)
        first = graph.snapshot()
        assert first.has_edge(0, 2) and first.m == cycle5.m + 1
        assert graph.snapshot() is first
        graph.remove_edge(0, 2)
        assert not graph.snapshot().has_edge(0, 2)

    def test_journal_since(self, cycle5):
        graph = DynamicGraph(cycle5)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        graph.remove_edge(0, 2)
        assert [e.version for e in graph.journal_since(0)] == [1, 2, 3]
        assert [e.version for e in graph.journal_since(1)] == [2, 3]
        assert graph.journal_since(3) == []

    def test_disconnected_seed_rejected(self):
        disconnected = repro.Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            DynamicGraph(disconnected)

    def test_laplacian_dense_matches_unweighted(self, karate):
        graph = DynamicGraph(karate)
        from repro.linalg.laplacian import laplacian_dense

        assert np.allclose(graph.laplacian_dense(), laplacian_dense(karate))

    def test_weighted_laplacian(self, path4):
        graph = DynamicGraph(path4)
        graph.update_weight(0, 1, 3.0)
        lap = graph.laplacian_dense()
        assert lap[0, 1] == pytest.approx(-3.0)
        assert lap[0, 0] == pytest.approx(3.0)
        assert lap[1, 1] == pytest.approx(4.0)


class TestEdgeUpdateRoutine:
    """Sherman–Morrison edge updates against fresh inversion."""

    def _grounded(self, graph, group):
        from repro.linalg.laplacian import grounded_laplacian_dense

        matrix, kept = grounded_laplacian_dense(graph, group)
        return np.linalg.inv(matrix), kept

    def test_interior_edge_insertion(self, karate):
        inverse, kept = self._grounded(karate, [0])
        local = {int(node): i for i, node in enumerate(kept)}
        u, v = 15, 20
        assert not karate.has_edge(u, v)
        updated = grounded_inverse_edge_update(inverse, local[u], local[v], 1.0)
        edges = list(karate.edges()) + [(u, v)]
        fresh, _ = self._grounded(repro.Graph(karate.n, edges), [0])
        assert np.allclose(updated, fresh, atol=1e-8)

    def test_grounded_endpoint_insertion(self, karate):
        inverse, kept = self._grounded(karate, [0])
        local = {int(node): i for i, node in enumerate(kept)}
        u = 9  # new edge (0, 9); endpoint 0 is grounded
        assert not karate.has_edge(0, u)
        updated = grounded_inverse_edge_update(inverse, local[u], None, 1.0)
        edges = list(karate.edges()) + [(0, u)]
        fresh, _ = self._grounded(repro.Graph(karate.n, edges), [0])
        assert np.allclose(updated, fresh, atol=1e-8)

    def test_edge_deletion_and_reweight(self, karate):
        inverse, kept = self._grounded(karate, [33])
        local = {int(node): i for i, node in enumerate(kept)}
        # (2, 3) is a removable (non-bridge) edge of the karate club.
        removed = grounded_inverse_edge_update(inverse, local[2], local[3], -1.0)
        edges = [e for e in karate.edges() if e != (2, 3)]
        fresh, _ = self._grounded(repro.Graph(karate.n, edges), [33])
        assert np.allclose(removed, fresh, atol=1e-8)
        # Reweighting by delta then -delta round-trips.
        heavier = grounded_inverse_edge_update(inverse, local[2], local[3], 0.7)
        back = grounded_inverse_edge_update(heavier, local[2], local[3], -0.7)
        assert np.allclose(back, inverse, atol=1e-8)

    def test_zero_delta_is_identity(self, karate):
        inverse, _ = self._grounded(karate, [0])
        assert np.array_equal(
            grounded_inverse_edge_update(inverse, 1, 2, 0.0), inverse
        )

    def test_singular_update_raises(self, path4):
        inverse, kept = self._grounded(path4, [0])
        local = {int(node): i for i, node in enumerate(kept)}
        # Removing the bridge (2, 3) makes the grounded matrix singular.
        with pytest.raises(InvalidParameterError):
            grounded_inverse_edge_update(inverse, local[2], local[3], -1.0)

    def test_bad_indices_rejected(self, karate):
        inverse, _ = self._grounded(karate, [0])
        with pytest.raises(InvalidParameterError):
            grounded_inverse_edge_update(inverse, -1, 2, 1.0)
        with pytest.raises(InvalidParameterError):
            grounded_inverse_edge_update(inverse, 4, 4, 1.0)
        with pytest.raises(InvalidParameterError):
            grounded_inverse_edge_update(np.ones((2, 3)), 0, 1, 1.0)


class TestIncrementalResistance:
    def test_matches_fresh_trace_after_random_journal(self, medium_ba):
        graph = DynamicGraph(medium_ba)
        tracker = IncrementalResistance(graph, [0, 5], refresh_interval=1000)
        rng = np.random.default_rng(99)
        events = random_update_journal(graph, 50, rng)
        assert len(events) == 50
        assert tracker.trace() == pytest.approx(
            grounded_trace(graph.snapshot(), [0, 5]), rel=1e-9
        )
        # The whole 50-event suffix folds in as a single rank-50 Woodbury
        # batch (no chained rank-1 steps, no refresh).
        assert tracker.stats.batch_updates == 1
        assert tracker.stats.batched_events == 50
        assert tracker.stats.rank1_updates == 0
        assert tracker.stats.refreshes == 0

    def test_refresh_policy_triggers(self, small_ba):
        graph = DynamicGraph(small_ba)
        tracker = IncrementalResistance(graph, [0], refresh_interval=4)
        random_update_journal(graph, 12, np.random.default_rng(1))
        tracker.trace()
        assert tracker.stats.refreshes >= 1
        assert tracker.trace() == pytest.approx(
            grounded_trace(graph.snapshot(), [0]), rel=1e-9
        )

    def test_reweight_tracked(self, karate):
        graph = DynamicGraph(karate)
        tracker = IncrementalResistance(graph, [0])
        graph.update_weight(2, 3, 4.0)
        kept_lap = graph.laplacian_dense()[1:, 1:]
        assert tracker.trace() == pytest.approx(
            float(np.trace(np.linalg.inv(kept_lap))), rel=1e-9
        )

    def test_resistance_and_cfcc_queries(self, karate):
        graph = DynamicGraph(karate)
        tracker = IncrementalResistance(graph, [0, 33])
        graph.add_edge(4, 25)
        snapshot = graph.snapshot()
        from repro.centrality.resistance import resistance_to_group

        assert tracker.resistance_to_group(16) == pytest.approx(
            resistance_to_group(snapshot, 16, [0, 33]), rel=1e-9
        )
        assert tracker.resistance_to_group(0) == 0.0
        from repro.exceptions import InvalidNodeError

        with pytest.raises(InvalidNodeError):
            tracker.resistance_to_group(-1)
        assert tracker.group_cfcc() == pytest.approx(
            group_cfcc(snapshot, [0, 33]), rel=1e-9
        )
        assert tracker.synced_version == graph.version

    def test_grounded_grounded_edge_skipped(self, karate):
        graph = DynamicGraph(karate)
        tracker = IncrementalResistance(graph, [0, 9], refresh_interval=1)
        assert not graph.has_edge(0, 9)
        graph.add_edge(0, 9)  # both endpoints grounded: inverse unaffected
        graph.update_weight(0, 9, 3.0)
        graph.update_weight(0, 9, 5.0)
        before = tracker.stats.rank1_updates
        assert tracker.trace() == pytest.approx(
            grounded_trace(graph.snapshot(), [0, 9]), rel=1e-9
        )
        assert tracker.stats.rank1_updates == before
        # Irrelevant events must not count against the staleness budget either
        # (three events > refresh_interval=1, yet no refresh happened).
        assert tracker.stats.refreshes == 0

    def test_invalid_group_rejected(self, karate):
        graph = DynamicGraph(karate)
        with pytest.raises(InvalidParameterError):
            IncrementalResistance(graph, [])
        with pytest.raises(InvalidParameterError):
            IncrementalResistance(graph, [0], refresh_interval=0)


class TestDynamicCFCM:
    def test_query_cache_hit_until_mutation(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        first = engine.query(3, method="exact")
        second = engine.query(3, method="exact")
        assert second is first
        assert engine.stats.query_hits == 1 and engine.stats.query_misses == 1
        apply_random_update(engine.graph, np.random.default_rng(0))
        third = engine.query(3, method="exact")
        assert third is not first
        assert engine.stats.query_misses == 2
        assert 0.0 < engine.stats.hit_rate() < 1.0

    def test_distinct_parameters_cached_separately(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        engine.query(2, method="degree")
        engine.query(3, method="degree")
        assert engine.stats.query_misses == 2

    def test_accepts_plain_graph(self, small_ba):
        engine = DynamicCFCM(small_ba, seed=0)
        assert isinstance(engine.graph, DynamicGraph)
        assert engine.version == 0

    def test_evaluate_exact_matches_batch(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        random_update_journal(engine.graph, 10, np.random.default_rng(5))
        group = [0, 1, 2]
        assert engine.evaluate(group, mode="exact") == pytest.approx(
            group_cfcc(engine.graph.snapshot(), group), rel=1e-9
        )
        with pytest.raises(InvalidParameterError):
            engine.evaluate(group, mode="quantum")

    def test_evaluate_forest_within_tolerance(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0, pool_size=192)
        group = [0, 1]
        estimate = engine.evaluate(group, mode="forest")
        exact = group_cfcc(engine.graph.snapshot(), group)
        assert estimate == pytest.approx(exact, rel=0.25)

    def test_forest_pool_selective_invalidation(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=1, pool_size=16)
        group = [0, 33]
        engine.evaluate_forest(group)
        assert engine.stats.forests_resampled == 16
        pool = engine._pools[(0, 33)]
        # Remove an edge: only the forests whose parent pointers use it are
        # dropped, the rest of the pool survives at full weight.
        removed = graph.remove_edge(2, 3)
        invalid = int(np.count_nonzero(pool.batch().uses_edge(removed.u, removed.v)))
        engine.evaluate_forest(group)
        assert pool.size == 16
        assert engine.stats.forests_dropped == invalid
        assert engine.stats.forests_resampled == 16 + invalid
        assert engine.stats.forests_kept >= 16 - invalid

    def test_forest_pool_survives_insertions_with_decayed_ess(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=1, pool_size=8)
        engine.evaluate_forest([0])
        pool = engine._pools[(0,)]
        assert pool.ess() == pytest.approx(8.0)
        graph.add_edge(15, 20)
        engine.evaluate_forest([0])
        # Insertions never flush: the stored forests survive with uniformly
        # decayed importance weights, and the decay shows up as ESS < size.
        assert engine.stats.pools_flushed == 0
        assert pool.size == 8
        assert 0.0 < pool.ess() < 8.0
        assert np.all(pool.weights() < 1.0)

    def test_ess_floor_triggers_fresh_topup(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=1, pool_size=8, ess_floor=0.9)
        engine.evaluate_forest([0])
        resampled = engine.stats.forests_resampled
        # Pile on insertions until the decayed ESS crosses the (high) floor.
        for u, v in [(15, 20), (15, 22), (16, 23), (16, 24), (17, 25)]:
            graph.add_edge(u, v)
        engine.evaluate_forest([0])
        assert engine.stats.ess_topups >= 1
        assert engine.stats.forests_resampled > resampled
        assert engine.stats.pools_flushed == 0
        # The top-up restored the pool above its floor.
        pool = engine._pools[(0,)]
        assert pool.ess() >= 0.9 * 8 - 1e-9

    def test_empty_pool_restarts_fresh(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=1, pool_size=4)
        engine.evaluate_forest([0])
        # Simulate a deletion having invalidated every stored forest.
        graph.remove_edge(2, 3)
        engine._pools[(0,)].flush()
        engine.evaluate_forest([0])  # refilled entirely from current snapshot
        pool = engine._pools[(0,)]
        assert pool.size == 4
        assert pool.ess() == pytest.approx(4.0)
        graph.add_edge(15, 20)
        engine.evaluate_forest([0])  # one insertion must not flush fresh pool
        assert engine.stats.pools_flushed == 0

    def test_forest_pool_survives_reweight_roundtrip(self, karate):
        graph = DynamicGraph(karate)
        engine = DynamicCFCM(graph, seed=1, pool_size=4)
        baseline = engine.evaluate_forest([0])
        pool = engine._pools[(0,)]
        graph.update_weight(0, 1, 2.0)
        with pytest.raises(InvalidParameterError):
            engine.evaluate_forest([0])  # non-unit weights: estimator invalid
        engine.sync()
        # The reweight applied the exact density ratio to the edge's users
        # instead of flushing the pool.
        assert pool.size == 4
        assert engine.stats.pools_flushed == 0
        users = np.count_nonzero(pool.weights() > 1.0)
        assert users == engine.stats.forests_reweighted
        graph.update_weight(0, 1, 1.0)
        # The round-trip cancels exactly: same forests, same weights, and
        # (version aside) the same estimate as before the excursion.
        assert engine.evaluate_forest([0]) == pytest.approx(baseline, rel=1e-12)
        assert pool.weights() == pytest.approx(np.ones(4))

    def test_eval_cache_hits(self, karate):
        engine = DynamicCFCM(DynamicGraph(karate), seed=0, pool_size=4)
        first = engine.evaluate_forest([0])
        assert engine.evaluate_forest([0]) == first
        assert engine.stats.eval_hits == 1

    def test_weighted_graph_query_guard(self, karate):
        graph = DynamicGraph(karate)
        graph.update_weight(0, 1, 2.0)
        engine = DynamicCFCM(graph, seed=0)
        # Every selection method works on the unit-weight snapshot, so all of
        # them must refuse weighted graphs (including exact greedy).
        for method in ("schur", "exact", "degree"):
            with pytest.raises(InvalidParameterError, match="unit edge weights"):
                engine.query(2, method=method)
        graph.update_weight(0, 1, 1.0)
        assert engine.query(2, method="degree").k == 2

    def test_query_validates_before_cache_lookup(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0)
        engine.query(3, method="degree")
        # int(3.7) would collide with the cached k=3 key; validation must win.
        with pytest.raises(InvalidParameterError):
            engine.query(3.7, method="degree")
        with pytest.raises(InvalidParameterError):
            engine.query(small_ba.n, method="degree")
        with pytest.raises(InvalidParameterError):
            engine.query(2, method="schur", eps=0.0)

    def test_caches_are_bounded(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0, cache_capacity=3,
                             pool_size=2)
        for k in range(1, 6):
            engine.query(k, method="degree")
            engine.evaluate_exact([k])
            engine.evaluate_forest([k])
        assert len(engine._query_cache) == 3
        assert len(engine._trackers) == 3
        assert len(engine._pools) == 3
        assert len(engine._eval_cache) == 3
        # The most recently used entries survive eviction.
        assert (5,) in engine._trackers and (1,) not in engine._trackers

    def test_query_cache_is_lru_not_fifo(self, small_ba):
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=0, cache_capacity=2)
        hot = engine.query(1, method="degree")
        engine.query(2, method="degree")
        assert engine.query(1, method="degree") is hot  # hit refreshes recency
        engine.query(3, method="degree")  # evicts k=2, not the hot k=1 entry
        assert engine.query(1, method="degree") is hot
        assert engine.stats.query_hits == 2
        assert engine.stats.query_misses == 3


class TestAcceptance:
    """ISSUE acceptance: engine output tracks from-scratch recomputation."""

    @pytest.mark.slow
    def test_engine_matches_fresh_run_after_50_updates(self, medium_ba):
        graph = DynamicGraph(medium_ba)
        engine = DynamicCFCM(graph, seed=7,
                             config=repro.SamplingConfig(eps=0.3, max_samples=64))
        engine.query(4, method="schur")  # warm state on the seed topology
        events = random_update_journal(graph, 50, np.random.default_rng(17))
        assert len(events) == 50

        result = engine.query(4, method="schur")
        fresh = repro.maximize_cfcc(
            graph.snapshot(), 4, method="schur", eps=0.3, seed=7,
            config=repro.SamplingConfig(eps=0.3, max_samples=64),
        )
        snapshot = graph.snapshot()
        engine_value = group_cfcc(snapshot, result.group)
        fresh_value = group_cfcc(snapshot, fresh.group)
        # Both are eps-approximate maximisers of the same objective on the
        # post-journal graph, so their exact CFCC must agree to within
        # estimator tolerance.
        assert engine_value == pytest.approx(fresh_value, rel=0.15)
        # And the incremental evaluation path agrees with dense inversion.
        assert engine.evaluate_exact(result.group) == pytest.approx(
            engine_value, rel=1e-8
        )


class TestWorkloadHelpers:
    def test_random_journal_preserves_invariants(self, small_ba):
        graph = DynamicGraph(small_ba)
        events = random_update_journal(graph, 30, np.random.default_rng(3))
        assert len(events) == 30
        assert graph.version == 30
        from repro.graph.traversal import is_connected

        assert is_connected(graph.snapshot())

    def test_add_only_stream(self, path4):
        graph = DynamicGraph(path4)
        events = random_update_journal(graph, 3, np.random.default_rng(0),
                                       add_probability=1.0)
        assert {e.kind for e in events} == {"add"}
        # The 4-node path has no removable edge: deletion attempts fall back
        # to insertions until the clique fills up.
        graph_full = DynamicGraph(generators.complete_graph(3))
        assert apply_random_update(graph_full, np.random.default_rng(0),
                                   add_probability=1.0) is not None
