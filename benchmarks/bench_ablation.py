"""Ablation benchmarks for the design choices called out in DESIGN.md.

* **Auxiliary root-set size |T|** — SchurCFCM's advantage comes from sampling
  forests rooted at ``S ∪ T``; sweeping |T| shows the trade-off between
  cheaper walks (larger |T|) and the cubic cost of inverting the sampled
  Schur complement.
* **Adaptive versus fixed sampling** — the empirical-Bernstein rule
  (Lemma 3.6) versus simply drawing the full sample budget.
* **JL dimension** — the numerator estimate needs O(eps^-2 log n) random
  directions; halving the cap halves the per-sample cost at some accuracy
  loss.
"""

from __future__ import annotations

import pytest

from repro.centrality.estimators import SamplingConfig
from repro.centrality.schur_cfcm import SchurCFCM, choose_extra_roots

K = 5


def config(max_samples: int = 32, min_samples: int = 8, jl: int = 48,
           eps: float = 0.2) -> SamplingConfig:
    return SamplingConfig(eps=eps, max_samples=max_samples, min_samples=min_samples,
                          initial_batch=8, max_jl_dimension=jl)


@pytest.mark.benchmark(group="ablation-extra-roots")
class TestExtraRootSetSize:
    def test_t_equals_1(self, benchmark, sparse_graph, bench_config):
        roots = choose_extra_roots(sparse_graph, size=1)
        benchmark(lambda: SchurCFCM(sparse_graph, seed=5, config=bench_config,
                                    extra_roots=roots).run(K))

    def test_t_equals_8(self, benchmark, sparse_graph, bench_config):
        roots = choose_extra_roots(sparse_graph, size=8)
        benchmark(lambda: SchurCFCM(sparse_graph, seed=5, config=bench_config,
                                    extra_roots=roots).run(K))

    def test_t_equals_32(self, benchmark, sparse_graph, bench_config):
        roots = choose_extra_roots(sparse_graph, size=32)
        benchmark(lambda: SchurCFCM(sparse_graph, seed=5, config=bench_config,
                                    extra_roots=roots).run(K))

    def test_t_automatic(self, benchmark, sparse_graph, bench_config):
        benchmark(lambda: SchurCFCM(sparse_graph, seed=5,
                                    config=bench_config).run(K))


@pytest.mark.benchmark(group="ablation-sampling-schedule")
class TestAdaptiveVersusFixedSampling:
    def test_adaptive_bernstein(self, benchmark, smallworld_graph):
        adaptive = config(max_samples=64, min_samples=8)
        benchmark(lambda: SchurCFCM(smallworld_graph, seed=6,
                                    config=adaptive).run(K))

    def test_fixed_full_budget(self, benchmark, smallworld_graph):
        # min_samples == max_samples disables early stopping entirely.
        fixed = config(max_samples=64, min_samples=64)
        benchmark(lambda: SchurCFCM(smallworld_graph, seed=6, config=fixed).run(K))


@pytest.mark.benchmark(group="ablation-jl-dimension")
class TestJLDimension:
    def test_jl_16(self, benchmark, sparse_graph):
        benchmark(lambda: SchurCFCM(sparse_graph, seed=7,
                                    config=config(jl=16)).run(K))

    def test_jl_48(self, benchmark, sparse_graph):
        benchmark(lambda: SchurCFCM(sparse_graph, seed=7,
                                    config=config(jl=48)).run(K))

    def test_jl_96(self, benchmark, sparse_graph):
        benchmark(lambda: SchurCFCM(sparse_graph, seed=7,
                                    config=config(jl=96)).run(K))
