"""Resistance-backend benchmarks — sparse solver-backed vs dense Woodbury.

Both backends replay the *same* recorded edge-update journal through
:class:`repro.dynamic.IncrementalResistance` and answer the same per-burst
``group_cfcc`` monitoring query; only the engine underneath differs:

* **dense** — the explicit ``inv(L_{-S})`` with rank-``t`` Woodbury folds
  (O(n²) per sync, O(n²) memory);
* **sparse** — a sparse grounded factorisation with low-rank corrections and
  JL-sketched Hutchinson diagonals (Õ(m) per sync, O(m + nt) memory).

Three correctness gates keep the timings honest:

1. the dense replay must stay **bit-identical** to a hand-rolled replay of
   the pre-backend update functions (``grounded_inverse_edge_update`` /
   ``grounded_inverse_block_update``) — the refactor is not allowed to move
   a single ULP on the incumbent path;
2. the dense final trace must match a fresh ``grounded_trace`` to 1e-8;
3. the sparse (sketched) final trace must agree with the exact inverse to
   ``--tolerance`` relative error.

The ``--smoke`` run additionally gates on the sparse backend being at least
1.5x faster than dense on the sync+evaluate path, which is what CI checks::

    PYTHONPATH=src python benchmarks/bench_backend.py --smoke
    PYTHONPATH=src python benchmarks/bench_backend.py --n 3000 --t 32
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Sequence

import numpy as np

from repro import obs
from repro.centrality.cfcc import grounded_trace
from repro.dynamic import (
    DynamicGraph,
    GraphUpdate,
    IncrementalResistance,
    apply_event,
    random_update_journal,
)
from repro.experiments.report import (
    metrics_prefix_for,
    percentiles_ms,
    write_bench_artifact,
    write_obs_artifacts,
)
from repro.graph import generators
from repro.linalg import (
    grounded_inverse_block_update,
    grounded_inverse_edge_update,
)

GROUP = (0, 1, 2)
SMOKE_SPEEDUP = 1.5


def _record_journal(base, bursts: int, t: int, seed: int) -> List[List[GraphUpdate]]:
    """Generate one shared edge-update stream, recorded burst by burst."""
    rng = np.random.default_rng(seed + 1)
    graph = DynamicGraph(base)
    return [random_update_journal(graph, t, rng) for _ in range(bursts)]


def _reference_dense_replay(base, journal: Sequence[Sequence[GraphUpdate]],
                            group: Sequence[int],
                            refresh_interval: int) -> np.ndarray:
    """Replay the journal with the pre-backend dense update kernels.

    Mirrors the tracker's sync exactly — one rank-``t`` batch per burst
    (single-event batches through the Sherman–Morrison path), a fresh
    ``np.linalg.inv`` of the grounded slice whenever the staleness budget
    overflows — so the result must be bit-identical to the dense backend's
    inverse.  The journal is edge-only, so the kept-row mapping is fixed.
    """
    graph = DynamicGraph(base)
    mapping = graph.snapshot_mapping()
    grounded = set(int(v) for v in group)
    keep_mask = np.array([int(x) not in grounded for x in mapping])
    positions = np.flatnonzero(keep_mask)
    inverse = np.linalg.inv(
        graph.laplacian_dense()[np.ix_(positions, positions)])
    local = {int(x): row for row, x in enumerate(mapping[keep_mask])}
    updates = 0
    for burst in journal:
        triples = []
        for event in burst:
            apply_event(graph, event)
            if event.u in grounded and event.v in grounded:
                continue
            i = local.get(event.u, -1)
            j = local.get(event.v, -1)
            if i < 0:
                i, j = j, -1
            triples.append((i, None if j < 0 else j, event.delta))
        if not triples:
            continue
        if updates + len(triples) > refresh_interval:
            inverse = np.linalg.inv(
                graph.laplacian_dense()[np.ix_(positions, positions)])
            updates = 0
        elif len(triples) == 1:
            inverse = grounded_inverse_edge_update(inverse, *triples[0])
            updates += 1
        else:
            inverse = grounded_inverse_block_update(inverse, triples)
            updates += len(triples)
    return inverse


def run_backend_comparison(n: int = 3000, bursts: int = 6, t: int = 32,
                           seed: int = 0, probes: int = 24,
                           tolerance: float = 0.1,
                           refresh_interval: int = 64,
                           verbose: bool = True) -> List[Dict[str, object]]:
    """Time dense vs sparse backends on one shared monitoring workload.

    ``refresh_interval`` bounds the staleness budget of *both* trackers, so
    the replay models sustained churn: low-rank folds between refreshes, a
    periodic refactorisation when the budget overflows — O(n³) on dense,
    Õ(m) on sparse, which is exactly the gap this benchmark exists to show.
    Returns one row per backend; the sparse row carries the sync+evaluate
    speedup over dense.  Raises ``AssertionError`` when a correctness gate
    fails (backends drifting apart is a bug, not a data point).
    """
    base = generators.barabasi_albert(n, 3, seed=seed)
    group = list(GROUP)
    journal = _record_journal(base, bursts, t, seed)
    events_total = sum(len(burst) for burst in journal)

    rows: List[Dict[str, object]] = []
    timings: Dict[str, float] = {}
    for backend in ("dense", "sparse"):
        options = {"probes": probes, "seed": seed} if backend == "sparse" else None
        graph = DynamicGraph(base)
        tracker = IncrementalResistance(graph, group,
                                        refresh_interval=refresh_interval,
                                        backend=backend,
                                        backend_options=options)
        tracker.trace()  # factorisation warm-up outside the timed region
        latencies: List[float] = []
        value = 0.0
        for burst in journal:
            for event in burst:
                apply_event(graph, event)
            op_start = time.perf_counter()
            value = tracker.group_cfcc()
            latencies.append(time.perf_counter() - op_start)
        seconds = float(sum(latencies))
        timings[backend] = seconds

        exact = graph.n / grounded_trace(graph.snapshot(), group)
        rel_err = abs(value - exact) / max(1.0, abs(exact))
        row: Dict[str, object] = {
            "backend": backend,
            "n": n,
            "bursts": bursts,
            "t": t,
            "events": events_total,
            "probes": probes if backend == "sparse" else None,
            "refresh_interval": refresh_interval,
            "sync_evaluate_seconds": seconds,
            "burst_latency": percentiles_ms(latencies),
            "group_cfcc": value,
            "group_cfcc_exact": exact,
            "relative_error": rel_err,
            "refreshes": tracker.stats.refreshes,
            "batched_events": tracker.stats.batched_events,
        }
        if backend == "dense":
            if not rel_err <= 1e-8:
                raise AssertionError(
                    f"dense backend drifted from the exact inverse: "
                    f"{value!r} vs {exact!r} (rel err {rel_err:.3e})"
                )
            reference = _reference_dense_replay(base, journal, group,
                                                refresh_interval)
            if not np.array_equal(reference, tracker.inverse):
                worst = float(np.abs(reference - tracker.inverse).max())
                raise AssertionError(
                    f"dense backend is not bit-identical to the pre-backend "
                    f"update kernels (max abs diff {worst:.3e})"
                )
            row["bit_identical"] = True
        else:
            if not rel_err <= tolerance:
                raise AssertionError(
                    f"sparse sketched estimate outside tolerance: {value!r} "
                    f"vs exact {exact!r} (rel err {rel_err:.3e} > {tolerance})"
                )
            row["speedup_vs_dense"] = (
                timings["dense"] / seconds if seconds else float("inf")
            )
            row["solver"] = tracker.backend.solver_used
        rows.append(row)
        if verbose:
            extra = (f"  x{row['speedup_vs_dense']:.2f} vs dense"
                     if backend == "sparse" else "  bit-identical")
            print(f"[bench_backend] {backend:>6}: {seconds:.4f}s over "
                  f"{bursts} bursts (rel err {rel_err:.2e}){extra}")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sparse solver-backed vs dense Woodbury resistance backends")
    parser.add_argument("--n", type=int, default=3000, help="graph size")
    parser.add_argument("--bursts", type=int, default=6,
                        help="update bursts to replay")
    parser.add_argument("--t", type=int, default=32, help="events per burst")
    parser.add_argument("--refresh-interval", type=int, default=64,
                        help="staleness budget before a refactorisation")
    parser.add_argument("--probes", type=int, default=24,
                        help="Hutchinson probes of the sparse backend")
    parser.add_argument("--tolerance", type=float, default=0.1,
                        help="relative-error gate on the sketched estimate")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: smaller sizes plus the >=1.5x "
                             "sparse-vs-dense speedup check")
    parser.add_argument("--output-json", default=None,
                        help="path of the JSON artifact (default in --smoke "
                             "mode: BENCH_backend.json)")
    args = parser.parse_args(argv)

    output = args.output_json
    own_registry = not obs.REGISTRY.enabled
    if own_registry:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
    try:
        if args.smoke:
            output = output or "BENCH_backend.json"
            rows = run_backend_comparison(n=1600, bursts=6, t=32,
                                          seed=args.seed, probes=args.probes,
                                          tolerance=args.tolerance,
                                          refresh_interval=64)
            sparse = next(r for r in rows if r["backend"] == "sparse")
            if not sparse["speedup_vs_dense"] >= SMOKE_SPEEDUP:
                raise AssertionError(
                    f"sparse backend speedup x{sparse['speedup_vs_dense']:.2f} "
                    f"below the x{SMOKE_SPEEDUP} smoke gate"
                )
        else:
            rows = run_backend_comparison(n=args.n, bursts=args.bursts,
                                          t=args.t, seed=args.seed,
                                          probes=args.probes,
                                          tolerance=args.tolerance,
                                          refresh_interval=args.refresh_interval)
    except AssertionError as exc:
        print(f"[bench_backend] smoke check FAILED: {exc}")
        return 1
    finally:
        if own_registry:
            obs.REGISTRY.disable()
    if output:
        write_bench_artifact(rows, output, benchmark="backend_compare")
        write_obs_artifacts(metrics_prefix_for(output), label="bench_backend")
    print(f"[bench_backend] {len(rows)} backends compared; dense bit-identical, "
          "sparse sketch within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
