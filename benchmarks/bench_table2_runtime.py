"""Table II benchmarks — running time of every CFCM algorithm.

Each benchmark measures one (algorithm, graph-family) cell of Table II with
k = 5.  The qualitative shape to look for in the report:

* ``exact`` is the slowest family on every graph and scales worst with n;
* ``approx`` (Laplacian-solver baseline) slows down on the *dense* graph much
  more than the sampling methods do;
* ``schur`` is at or below ``forest`` on every graph.
"""

from __future__ import annotations

import pytest

from repro.centrality.approx_greedy import ApproxGreedy
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.forest_cfcm import ForestCFCM
from repro.centrality.schur_cfcm import SchurCFCM

K = 5


@pytest.mark.benchmark(group="table2-sparse")
class TestSparseGraph:
    def test_exact(self, benchmark, sparse_graph):
        benchmark(lambda: ExactGreedy(sparse_graph).run(K))

    def test_approx(self, benchmark, sparse_graph):
        benchmark(lambda: ApproxGreedy(sparse_graph, eps=0.2, seed=0).run(K))

    def test_forest(self, benchmark, sparse_graph, bench_config):
        benchmark(lambda: ForestCFCM(sparse_graph, seed=0, config=bench_config).run(K))

    def test_schur(self, benchmark, sparse_graph, bench_config):
        benchmark(lambda: SchurCFCM(sparse_graph, seed=0, config=bench_config).run(K))


@pytest.mark.benchmark(group="table2-dense")
class TestDenseGraph:
    def test_exact(self, benchmark, dense_graph):
        benchmark(lambda: ExactGreedy(dense_graph).run(K))

    def test_approx(self, benchmark, dense_graph):
        benchmark(lambda: ApproxGreedy(dense_graph, eps=0.2, seed=0).run(K))

    def test_forest(self, benchmark, dense_graph, bench_config):
        benchmark(lambda: ForestCFCM(dense_graph, seed=0, config=bench_config).run(K))

    def test_schur(self, benchmark, dense_graph, bench_config):
        benchmark(lambda: SchurCFCM(dense_graph, seed=0, config=bench_config).run(K))


@pytest.mark.benchmark(group="table2-smallworld")
class TestSmallWorldGraph:
    def test_exact(self, benchmark, smallworld_graph):
        benchmark(lambda: ExactGreedy(smallworld_graph).run(K))

    def test_approx(self, benchmark, smallworld_graph):
        benchmark(lambda: ApproxGreedy(smallworld_graph, eps=0.2, seed=0).run(K))

    def test_forest(self, benchmark, smallworld_graph, bench_config):
        benchmark(lambda: ForestCFCM(smallworld_graph, seed=0, config=bench_config).run(K))

    def test_schur(self, benchmark, smallworld_graph, bench_config):
        benchmark(lambda: SchurCFCM(smallworld_graph, seed=0, config=bench_config).run(K))
