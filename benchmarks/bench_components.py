"""Component benchmarks — the substrate costs behind the headline algorithms.

These micro-benchmarks expose where the time goes:

* Wilson forest sampling with a single root versus an enlarged root set —
  the mechanism behind SchurCFCM's speed advantage (Lemma 3.7);
* the per-sample estimator processing (subtree sums + BFS prefix sums);
* the Laplacian solver substrate used by the ApproxGreedy baseline;
* exact Schur-complement assembly versus its sampled counterpart.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.centrality.estimators import ForestAccumulator, rademacher_weights
from repro.linalg.laplacian import grounded_laplacian
from repro.linalg.schur import grounded_inverse_block
from repro.linalg.solvers import LaplacianSolver, SolverMethod
from repro.linalg.updates import GroundedInverseTracker
from repro.sampling.wilson import sample_rooted_forest


@pytest.mark.benchmark(group="component-wilson")
class TestWilsonSampling:
    def test_single_root(self, benchmark, sparse_graph):
        hub = int(np.argmax(sparse_graph.degrees))
        benchmark(lambda: sample_rooted_forest(sparse_graph, [hub], seed=0))

    def test_enlarged_root_set(self, benchmark, sparse_graph):
        hubs = [int(v) for v in np.argsort(-sparse_graph.degrees)[:8]]
        benchmark(lambda: sample_rooted_forest(sparse_graph, hubs, seed=0))

    def test_dense_graph_single_root(self, benchmark, dense_graph):
        hub = int(np.argmax(dense_graph.degrees))
        benchmark(lambda: sample_rooted_forest(dense_graph, [hub], seed=0))


@pytest.mark.benchmark(group="component-estimator")
class TestEstimatorProcessing:
    def test_accumulate_batch_with_jl_weights(self, benchmark, sparse_graph, rng=None):
        hub = int(np.argmax(sparse_graph.degrees))
        weights = rademacher_weights(32, sparse_graph.n, [hub],
                                     np.random.default_rng(0))

        def run():
            accumulator = ForestAccumulator(sparse_graph, [hub], weights=weights,
                                            seed=1)
            accumulator.add_samples(8)
            return accumulator.diag_estimates()

        benchmark(run)


@pytest.mark.benchmark(group="component-solver")
class TestSolverSubstrate:
    def test_sparse_lu_factor_and_solve(self, benchmark, sparse_graph):
        matrix, _ = grounded_laplacian(sparse_graph, [0])
        rhs = np.ones(matrix.shape[0])

        def run():
            solver = LaplacianSolver(matrix, method=SolverMethod.SPARSE_LU)
            return solver.solve(rhs)

        benchmark(run)

    def test_cg_solve(self, benchmark, sparse_graph):
        matrix, _ = grounded_laplacian(sparse_graph, [0])
        rhs = np.ones(matrix.shape[0])
        solver = LaplacianSolver(matrix, method=SolverMethod.CONJUGATE_GRADIENT,
                                 tol=1e-8)
        benchmark(lambda: solver.solve(rhs))

    def test_dense_inverse_downdate(self, benchmark, sparse_graph):
        tracker = GroundedInverseTracker(sparse_graph, [0])
        candidates = [v for v in range(1, sparse_graph.n)][:5]

        def run():
            local = GroundedInverseTracker(sparse_graph, [0])
            for node in candidates:
                local.add_node(node)
            return local.trace()

        benchmark(run)
        assert tracker.trace() > 0


@pytest.mark.benchmark(group="component-schur")
class TestSchurAssembly:
    def test_exact_block_decomposition(self, benchmark, smallworld_graph):
        hubs = [int(v) for v in np.argsort(-smallworld_graph.degrees)[:6]]
        benchmark(lambda: grounded_inverse_block(smallworld_graph, [hubs[0]], hubs[1:]))
