"""Fig. 2 / Fig. 3 benchmarks — effectiveness of the selected groups.

``pytest-benchmark`` measures the selection time of each method while the
assertions check the effectiveness ordering the figures report: the greedy
families reach (nearly) the exact-greedy CFCC while the Degree and Top-CFCC
heuristics trail.  Fig. 2 corresponds to the sparse (small) graph with the
exact baseline available; Fig. 3 to the dense graph where CFCC of the result
is estimated with the sparse-solver route.
"""

from __future__ import annotations

import pytest

from repro.centrality.cfcc import group_cfcc, group_cfcc_estimate
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.forest_cfcm import ForestCFCM
from repro.centrality.heuristics import degree_group, top_cfcc_group
from repro.centrality.schur_cfcm import SchurCFCM

K = 8


@pytest.mark.benchmark(group="fig2-small-graph")
class TestSmallGraphEffectiveness:
    def test_exact_reference(self, benchmark, sparse_graph):
        result = benchmark(lambda: ExactGreedy(sparse_graph).run(K))
        assert len(result.group) == K

    def test_schur_matches_exact(self, benchmark, sparse_graph, bench_config):
        exact_value = group_cfcc(sparse_graph, ExactGreedy(sparse_graph).run(K).group)
        result = benchmark(lambda: SchurCFCM(sparse_graph, seed=1,
                                             config=bench_config).run(K))
        assert group_cfcc(sparse_graph, result.group) >= 0.85 * exact_value

    def test_forest_matches_exact(self, benchmark, sparse_graph, bench_config):
        exact_value = group_cfcc(sparse_graph, ExactGreedy(sparse_graph).run(K).group)
        result = benchmark(lambda: ForestCFCM(sparse_graph, seed=1,
                                              config=bench_config).run(K))
        assert group_cfcc(sparse_graph, result.group) >= 0.8 * exact_value

    def test_degree_heuristic_trails(self, benchmark, sparse_graph):
        exact_value = group_cfcc(sparse_graph, ExactGreedy(sparse_graph).run(K).group)
        result = benchmark(lambda: degree_group(sparse_graph, K))
        assert group_cfcc(sparse_graph, result.group) <= exact_value + 1e-9

    def test_top_cfcc_heuristic(self, benchmark, sparse_graph):
        result = benchmark(lambda: top_cfcc_group(sparse_graph, K))
        assert len(result.group) == K


@pytest.mark.benchmark(group="fig3-dense-graph")
class TestDenseGraphEffectiveness:
    def test_schur_beats_degree(self, benchmark, dense_graph, bench_config):
        result = benchmark(lambda: SchurCFCM(dense_graph, seed=2,
                                             config=bench_config).run(K))
        schur_value = group_cfcc_estimate(dense_graph, result.group, probes=32, seed=0)
        degree_value = group_cfcc_estimate(dense_graph, degree_group(dense_graph, K).group,
                                           probes=32, seed=0)
        assert schur_value >= 0.9 * degree_value

    def test_forest_runs_on_dense_graph(self, benchmark, dense_graph, bench_config):
        result = benchmark(lambda: ForestCFCM(dense_graph, seed=2,
                                              config=bench_config).run(K))
        assert len(result.group) == K
