"""Shared fixtures and workloads for the pytest-benchmark suite.

Benchmarks are sized for a single-core laptop: every graph is a scaled-down
synthetic stand-in (see DESIGN.md) and the sampling budgets are modest.  Set
``REPRO_BENCH_SCALE=large`` to benchmark on the bigger stand-ins.
"""

from __future__ import annotations

import os

import pytest

from repro.centrality.estimators import SamplingConfig
from repro.graph import generators

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def scaled(small: int, large: int) -> int:
    """Pick a workload size according to ``REPRO_BENCH_SCALE``."""
    return large if BENCH_SCALE == "large" else small


@pytest.fixture(scope="session")
def sparse_graph():
    """Sparse scale-free graph (stand-in for Routeviews / web-EPA)."""
    return generators.barabasi_albert(scaled(400, 2000), 2, seed=11)


@pytest.fixture(scope="session")
def dense_graph():
    """Dense clustered scale-free graph (stand-in for Facebook / buzznet)."""
    return generators.powerlaw_cluster(scaled(300, 1500), 12, 0.3, seed=12)


@pytest.fixture(scope="session")
def smallworld_graph():
    """Small-world ring graph (stand-in for Euroroads / Amazon)."""
    return generators.watts_strogatz(scaled(300, 1500), 4, 0.05, seed=13)


@pytest.fixture(scope="session")
def tiny_graph():
    """Tiny graph for the optimality benchmarks (Fig. 1 regime)."""
    return generators.powerlaw_cluster(40, 2, 0.3, seed=14)


@pytest.fixture(scope="session")
def bench_config():
    """Sampling configuration used by the benchmark runs (eps = 0.2 tier)."""
    return SamplingConfig(eps=0.2, max_samples=32, min_samples=8, initial_batch=8,
                          max_jl_dimension=48)


@pytest.fixture(scope="session")
def loose_config():
    """Sampling configuration for the eps = 0.3 tier."""
    return SamplingConfig(eps=0.3, max_samples=24, min_samples=8, initial_batch=8,
                          max_jl_dimension=32)


@pytest.fixture(scope="session")
def tight_config():
    """Sampling configuration for the eps = 0.15 tier."""
    return SamplingConfig(eps=0.15, max_samples=48, min_samples=8, initial_batch=8,
                          max_jl_dimension=64)
