"""Async-service benchmarks — concurrent traffic vs a synchronous baseline.

The async pass drives :class:`repro.service.AsyncCFCMService` with a Poisson
stream of monitoring evaluations interleaved with random updates; the sync
baseline replays the *identical* journal single-threaded through a
:class:`repro.dynamic.DynamicCFCM`, evaluating at the same versions.  Both
passes therefore do the same logical work, so throughput and latency
percentiles are directly comparable — and their final values must agree to
1e-8, which is the smoke gate CI runs.

Besides the pytest-benchmark suite this module is runnable standalone::

    PYTHONPATH=src python benchmarks/bench_async.py --smoke
    PYTHONPATH=src python benchmarks/bench_async.py --n 400 --ops 240

``--smoke`` writes the ``BENCH_async.json`` perf-trajectory artifact
(uploaded per-commit by CI) and exits non-zero when the equivalence check or
the run itself fails.
"""

from __future__ import annotations

import argparse
import asyncio
import time

import numpy as np
import pytest

from repro import obs
from repro.dynamic import (
    DynamicCFCM,
    DynamicGraph,
    apply_event,
    poisson_traffic,
    random_update_journal,
)
from repro.experiments.report import (
    metrics_prefix_for,
    percentiles_ms,
    write_bench_artifact,
    write_obs_artifacts,
)
from repro.graph import generators
from repro.service import AsyncCFCMService

GROUP = (0, 1, 2)


async def _drive_async(base, ops, rate, query_fraction, workers, seed):
    """One async pass; returns (report, final value, wall seconds, stats)."""
    async with AsyncCFCMService(base, seed=seed, workers=workers) as service:
        started = time.perf_counter()
        report = await poisson_traffic(
            service,
            ops,
            rng=seed,
            rate=rate,
            query_fraction=query_fraction,
            monitor_group=GROUP,
            evaluate_fraction=1.0,
            method="exact",
            k=len(GROUP),
        )
        wall = time.perf_counter() - started
        final = await service.evaluate(GROUP, mode="exact")
        stats = service.stats.as_dict()
    return report, float(final.result), wall, stats


def _replay_sync(base, report, seed):
    """Sync baseline: identical journal, evaluations at the same versions."""
    graph = DynamicGraph(base)
    engine = DynamicCFCM(graph, seed=seed)
    events = report.events
    observations = sorted(report.eval_observations)
    latencies = []
    index = 0
    started = time.perf_counter()
    for version, _ in observations:
        op_start = time.perf_counter()
        while index < len(events) and events[index].version <= version:
            apply_event(graph, events[index])
            index += 1
        engine.evaluate_exact(GROUP)
        latencies.append(time.perf_counter() - op_start)
    while index < len(events):
        apply_event(graph, events[index])
        index += 1
    final = engine.evaluate_exact(GROUP)
    wall = time.perf_counter() - started
    return final, wall, latencies


def run_async_comparison(n=240, ops=160, rate=500.0, query_fraction=0.5,
                         workers=2, seed=0, verbose=True):
    """Async service vs synchronous engine on the same traffic; returns a row.

    Raises ``AssertionError`` when the two passes disagree beyond 1e-8 —
    they maintain the same journal, so any drift is a correctness bug, not
    noise.  Both passes record onto :data:`repro.obs.REGISTRY`, and the row
    carries the registry-derived request/engine-op latency histograms next
    to the wall-clock percentiles.
    """
    base = generators.barabasi_albert(n, 3, seed=seed)
    own_registry = not obs.REGISTRY.enabled
    if own_registry:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
    try:
        report, async_final, async_wall, stats = asyncio.run(
            _drive_async(base, ops, rate, query_fraction, workers, seed))
        sync_final, sync_wall, sync_latencies = _replay_sync(base, report, seed)
    finally:
        if own_registry:
            obs.REGISTRY.disable()
    # Recorded values survive disable(); registered at module import, so
    # neither get() can miss.
    request_seconds = obs.REGISTRY.get("repro_service_request_seconds")
    op_seconds = obs.REGISTRY.get("repro_engine_op_seconds")

    drift = abs(async_final - sync_final)
    if not drift <= 1e-8 * max(1.0, abs(sync_final)):
        raise AssertionError(
            f"async service ({async_final!r}) and synchronous baseline "
            f"({sync_final!r}) disagree at version {report.events[-1].version if report.events else 0}: "
            f"drift {drift}")

    completed = report.evaluations + report.updates_applied + report.updates_failed
    row = {
        "n": n,
        "ops": ops,
        "rate": rate,
        "query_fraction": query_fraction,
        "workers": workers,
        "async_wall_seconds": async_wall,
        "sync_wall_seconds": sync_wall,
        "async_throughput_ops_per_s": completed / async_wall if async_wall else None,
        "evaluations": report.evaluations,
        "updates_applied": report.updates_applied,
        "mean_batch_size": stats["mean_batch_size"],
        "async_query": percentiles_ms(report.query_latencies),
        "sync_query": percentiles_ms(sync_latencies),
        "service_request_histogram": request_seconds.summary(),
        "engine_op_histogram": op_seconds.summary(),
    }
    if verbose:
        print(f"[bench_async] n={n} ops={ops}: async {async_wall:.4f}s "
              f"(p95 {row['async_query']['p95_ms']:.2f}ms, mean batch "
              f"{row['mean_batch_size']:.1f}) vs sync {sync_wall:.4f}s "
              f"(p95 {row['sync_query']['p95_ms']:.2f}ms); agreement to 1e-8")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Async CFCM service vs synchronous engine under identical traffic")
    parser.add_argument("--n", type=int, default=240, help="graph size")
    parser.add_argument("--ops", type=int, default=160,
                        help="Poisson arrivals per pass")
    parser.add_argument("--rate", type=float, default=500.0,
                        help="arrival rate (events/s)")
    parser.add_argument("--query-fraction", type=float, default=0.5,
                        help="fraction of arrivals that are evaluations")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker threads of the async service")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for the CI correctness/rot gate")
    parser.add_argument("--output-json", default=None,
                        help="path of the JSON artifact (default in --smoke "
                             "mode: BENCH_async.json)")
    args = parser.parse_args(argv)

    output = args.output_json
    try:
        if args.smoke:
            output = output or "BENCH_async.json"
            rows = [run_async_comparison(n=120, ops=60, rate=args.rate,
                                         query_fraction=args.query_fraction,
                                         workers=args.workers, seed=args.seed)]
        else:
            rows = [run_async_comparison(n=args.n, ops=args.ops, rate=args.rate,
                                         query_fraction=args.query_fraction,
                                         workers=args.workers, seed=args.seed)]
    except AssertionError as exc:
        print(f"[bench_async] smoke check FAILED: {exc}")
        return 1
    if output:
        write_bench_artifact(rows, output, benchmark="async_service")
        write_obs_artifacts(metrics_prefix_for(output), label="bench_async")
    print("[bench_async] async service and synchronous baseline agreed to 1e-8")
    return 0


# --------------------------------------------------------------------------
# pytest-benchmark suite
# --------------------------------------------------------------------------

@pytest.mark.benchmark(group="async-service")
class TestAsyncServiceTraffic:
    """Mixed traffic through the async service vs the synchronous engine."""

    def test_async_service_mixed_traffic(self, benchmark, sparse_graph):
        def run():
            async def drive():
                async with AsyncCFCMService(sparse_graph, seed=0) as service:
                    report = await poisson_traffic(
                        service, 24, rng=0, query_fraction=0.5,
                        monitor_group=GROUP, evaluate_fraction=1.0,
                        method="exact", k=len(GROUP))
                    return report.updates_applied
            return asyncio.run(drive())

        benchmark(run)

    def test_sync_engine_mixed_traffic(self, benchmark, sparse_graph):
        def run():
            graph = DynamicGraph(sparse_graph)
            engine = DynamicCFCM(graph, seed=0)
            rng = np.random.default_rng(0)
            value = engine.evaluate_exact(GROUP)
            for _ in range(12):
                random_update_journal(graph, 1, rng)
                value = engine.evaluate_exact(GROUP)
            return value

        benchmark(run)


if __name__ == "__main__":
    raise SystemExit(main())
