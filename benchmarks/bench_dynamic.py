"""Dynamic-engine benchmarks — incremental maintenance vs from-scratch work.

Comparisons pairing an incremental path of :mod:`repro.dynamic` with the
batch recomputation it replaces:

* maintaining ``Tr(inv(L_{-S}))`` across a burst of ``t`` edge updates three
  ways: **batched** (one rank-``t`` Woodbury sync per burst), **sequential**
  (a Sherman–Morrison sync after every single event) and **refactorise** (a
  fresh O(n³) inversion per burst);
* answering a repeated CFCM query on an unchanged graph: version-aware cache
  hit versus re-running the batch algorithm;
* an update-heavy monitoring workload (updates interleaved with group-CFCC
  evaluations) end to end through the engine versus from scratch.

Besides the pytest-benchmark suite this module is runnable standalone, so CI
can exercise it cheaply::

    PYTHONPATH=src python benchmarks/bench_dynamic.py --smoke
    PYTHONPATH=src python benchmarks/bench_dynamic.py --n 600 --repeats 5
"""

from __future__ import annotations

import argparse
import time

import numpy as np
import pytest

from repro import obs
from repro.centrality.api import maximize_cfcc
from repro.centrality.cfcc import group_cfcc, grounded_trace
from repro.dynamic import DynamicCFCM, DynamicGraph, IncrementalResistance, \
    random_update_journal
from repro.experiments.report import (
    metrics_prefix_for,
    percentiles_ms,
    write_bench_artifact,
    write_obs_artifacts,
)
from repro.graph import generators

UPDATE_BURST = 8
GROUP = (0, 1, 2)


def _dynamic_copy(graph):
    """Fresh DynamicGraph over the session-scoped fixture topology."""
    return DynamicGraph(graph)


@pytest.mark.benchmark(group="dynamic-updates")
class TestIncrementalResistanceMaintenance:
    """Burst maintenance: batched rank-t vs per-event rank-1 vs refactorise."""

    def test_batched_sync_per_burst(self, benchmark, sparse_graph):
        def run():
            graph = _dynamic_copy(sparse_graph)
            tracker = IncrementalResistance(graph, list(GROUP),
                                            refresh_interval=10_000)
            rng = np.random.default_rng(0)
            for _ in range(4):
                random_update_journal(graph, UPDATE_BURST, rng)
                tracker.trace()  # whole burst folds in as one Woodbury solve
            return tracker.trace()

        benchmark(run)

    def test_sequential_sync_per_event(self, benchmark, sparse_graph):
        def run():
            graph = _dynamic_copy(sparse_graph)
            tracker = IncrementalResistance(graph, list(GROUP),
                                            refresh_interval=10_000)
            rng = np.random.default_rng(0)
            for _ in range(4):
                for _ in range(UPDATE_BURST):
                    random_update_journal(graph, 1, rng)
                    tracker.trace()  # one rank-1 step per event
            return tracker.trace()

        benchmark(run)

    def test_scratch_inversion_per_burst(self, benchmark, sparse_graph):
        def run():
            graph = _dynamic_copy(sparse_graph)
            grounded_trace(graph.snapshot(), list(GROUP))
            rng = np.random.default_rng(0)
            value = 0.0
            for _ in range(4):
                random_update_journal(graph, UPDATE_BURST, rng)
                value = grounded_trace(graph.snapshot(), list(GROUP))
            return value

        benchmark(run)


@pytest.mark.benchmark(group="dynamic-query")
class TestCachedQueries:
    def test_engine_repeat_query(self, benchmark, sparse_graph, loose_config):
        engine = DynamicCFCM(_dynamic_copy(sparse_graph), seed=0,
                             config=loose_config)
        engine.query(4, method="schur")  # warm the cache once
        benchmark(lambda: engine.query(4, method="schur"))

    def test_scratch_repeat_query(self, benchmark, sparse_graph, loose_config):
        snapshot = _dynamic_copy(sparse_graph).snapshot()
        benchmark(lambda: maximize_cfcc(snapshot, 4, method="schur", seed=0,
                                        config=loose_config))


@pytest.mark.benchmark(group="dynamic-workload")
class TestUpdateHeavyWorkload:
    """8 updates : 1 evaluation per round — the update-heavy regime."""

    def test_engine_update_heavy(self, benchmark, sparse_graph):
        def run():
            graph = _dynamic_copy(sparse_graph)
            engine = DynamicCFCM(graph, seed=0)
            rng = np.random.default_rng(1)
            value = engine.evaluate_exact(list(GROUP))
            for _ in range(4):
                random_update_journal(graph, UPDATE_BURST, rng)
                value = engine.evaluate_exact(list(GROUP))
            return value

        benchmark(run)

    def test_scratch_update_heavy(self, benchmark, sparse_graph):
        def run():
            graph = _dynamic_copy(sparse_graph)
            rng = np.random.default_rng(1)
            value = group_cfcc(graph.snapshot(), list(GROUP))
            for _ in range(4):
                random_update_journal(graph, UPDATE_BURST, rng)
                value = group_cfcc(graph.snapshot(), list(GROUP))
            return value

        benchmark(run)


# --------------------------------------------------------------------------
# Standalone burst-size study (also the CI smoke run)
# --------------------------------------------------------------------------

def run_burst_comparison(n: int = 400, bursts: int = 4,
                         t_values=(4, 16, 64), repeats: int = 3,
                         seed: int = 0, backend: str = "dense",
                         verbose: bool = True):
    """Time batched vs sequential vs refactorise syncs per burst size ``t``.

    Every strategy replays the *same* update stream; their final traces are
    cross-checked to 1e-8 so the timings cannot drift apart semantically.
    ``backend`` selects the resistance backend of the incremental trackers
    and is recorded on every row.  Returns one result dict per ``t``.
    """
    base = generators.barabasi_albert(n, 3, seed=seed)
    group = list(GROUP)
    rows = []
    for t in t_values:
        timings = {"batched": 0.0, "sequential": 0.0, "refactorise": 0.0}
        latencies = {name: [] for name in timings}
        traces = {}

        for strategy in timings:
            rng = np.random.default_rng(seed + 1)
            graph = DynamicGraph(base)
            tracker = None
            if strategy != "refactorise":
                tracker = IncrementalResistance(graph, group,
                                                refresh_interval=10**9,
                                                backend=backend)
            value = 0.0
            start = time.perf_counter()
            for _ in range(repeats):
                for _ in range(bursts):
                    # Per-burst sync latency excludes journal generation so
                    # the percentile fields compare the maintenance work
                    # alone; the aggregate timing keeps the whole loop.
                    if strategy == "sequential":
                        burst_seconds = 0.0
                        for _ in range(t):
                            random_update_journal(graph, 1, rng)
                            op_start = time.perf_counter()
                            value = tracker.trace()
                            burst_seconds += time.perf_counter() - op_start
                        latencies[strategy].append(burst_seconds)
                    else:
                        random_update_journal(graph, t, rng)
                        op_start = time.perf_counter()
                        if strategy == "batched":
                            value = tracker.trace()
                        else:
                            value = grounded_trace(graph.snapshot(), group)
                        latencies[strategy].append(
                            time.perf_counter() - op_start)
            timings[strategy] = time.perf_counter() - start
            traces[strategy] = value

        spread = max(traces.values()) - min(traces.values())
        if not spread < 1e-8 * max(1.0, abs(traces["refactorise"])):
            raise AssertionError(
                f"strategies disagree at t={t}: {traces} (spread {spread})"
            )
        row = {
            "t": t,
            "backend": backend,
            "batched_seconds": timings["batched"],
            "sequential_seconds": timings["sequential"],
            "refactorise_seconds": timings["refactorise"],
            "speedup_vs_sequential": timings["sequential"] / timings["batched"]
            if timings["batched"] else float("inf"),
            "speedup_vs_refactorise": timings["refactorise"] / timings["batched"]
            if timings["batched"] else float("inf"),
            "batched_burst_latency": percentiles_ms(latencies["batched"]),
            "sequential_burst_latency": percentiles_ms(latencies["sequential"]),
            "refactorise_burst_latency": percentiles_ms(latencies["refactorise"]),
        }
        rows.append(row)
        if verbose:
            print(f"t={t:>3}  batched {row['batched_seconds']:.4f}s  "
                  f"sequential {row['sequential_seconds']:.4f}s  "
                  f"refactorise {row['refactorise_seconds']:.4f}s  "
                  f"(x{row['speedup_vs_sequential']:.2f} vs sequential, "
                  f"x{row['speedup_vs_refactorise']:.2f} vs refactorise)")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Batched vs sequential vs refactorise burst maintenance")
    parser.add_argument("--n", type=int, default=400, help="graph size")
    parser.add_argument("--bursts", type=int, default=4,
                        help="update bursts per repeat")
    parser.add_argument("--repeats", type=int, default=3,
                        help="stream repetitions per strategy")
    parser.add_argument("--t", type=int, nargs="+", default=[4, 16, 64],
                        help="burst sizes to sweep")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--backend", choices=("dense", "sparse", "auto"),
                        default="dense",
                        help="resistance backend of the incremental trackers")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for a CI correctness/rot check")
    parser.add_argument("--output-json", default=None,
                        help="path of the JSON artifact (default in --smoke "
                             "mode: BENCH_dynamic.json)")
    args = parser.parse_args(argv)

    # Smoke failures must gate CI: exit non-zero with a one-line verdict
    # instead of only printing (or worse, returning 0 with a traceback in
    # the log that nothing checks).
    output = args.output_json
    own_registry = not obs.REGISTRY.enabled
    if own_registry:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
    try:
        if args.smoke:
            output = output or "BENCH_dynamic.json"
            rows = run_burst_comparison(n=120, bursts=2, t_values=(4, 16),
                                        repeats=1, seed=args.seed,
                                        backend=args.backend)
        else:
            rows = run_burst_comparison(n=args.n, bursts=args.bursts,
                                        t_values=tuple(args.t),
                                        repeats=args.repeats, seed=args.seed,
                                        backend=args.backend)
        for row in rows:
            for key in ("batched_seconds", "sequential_seconds",
                        "refactorise_seconds"):
                if not np.isfinite(row[key]) or row[key] < 0.0:
                    raise AssertionError(f"non-finite timing {key}={row[key]} "
                                         f"at t={row['t']}")
    except AssertionError as exc:
        print(f"[bench_dynamic] smoke check FAILED: {exc}")
        return 1
    finally:
        if own_registry:
            obs.REGISTRY.disable()
    if output:
        write_bench_artifact(rows, output, benchmark="dynamic_bursts")
        write_obs_artifacts(metrics_prefix_for(output), label="bench_dynamic")
    print(f"[bench_dynamic] {len(rows)} burst sizes compared; "
          "all strategies agreed to 1e-8")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
