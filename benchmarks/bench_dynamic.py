"""Dynamic-engine benchmarks — incremental maintenance vs from-scratch work.

Three comparisons, each pairing an incremental path of :mod:`repro.dynamic`
with the batch recomputation it replaces:

* maintaining ``Tr(inv(L_{-S}))`` across a burst of edge updates: O(n²)
  Sherman–Morrison syncs versus a fresh O(n³) inversion per burst;
* answering a repeated CFCM query on an unchanged graph: version-aware cache
  hit versus re-running the batch algorithm;
* an update-heavy monitoring workload (updates interleaved with group-CFCC
  evaluations) end to end through the engine versus from scratch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.centrality.api import maximize_cfcc
from repro.centrality.cfcc import group_cfcc
from repro.centrality.estimators import SamplingConfig
from repro.dynamic import DynamicCFCM, DynamicGraph, random_update_journal

UPDATE_BURST = 8
GROUP = (0, 1, 2)


def _dynamic_copy(graph):
    """Fresh DynamicGraph over the session-scoped fixture topology."""
    return DynamicGraph(graph)


@pytest.mark.benchmark(group="dynamic-updates")
class TestIncrementalResistanceMaintenance:
    def test_incremental_sync_per_burst(self, benchmark, sparse_graph):
        from repro.dynamic import IncrementalResistance

        def run():
            graph = _dynamic_copy(sparse_graph)
            tracker = IncrementalResistance(graph, list(GROUP))
            rng = np.random.default_rng(0)
            for _ in range(4):
                random_update_journal(graph, UPDATE_BURST, rng)
                tracker.trace()
            return tracker.trace()

        benchmark(run)

    def test_scratch_inversion_per_burst(self, benchmark, sparse_graph):
        from repro.centrality.cfcc import grounded_trace

        def run():
            graph = _dynamic_copy(sparse_graph)
            grounded_trace(graph.snapshot(), list(GROUP))
            rng = np.random.default_rng(0)
            value = 0.0
            for _ in range(4):
                random_update_journal(graph, UPDATE_BURST, rng)
                value = grounded_trace(graph.snapshot(), list(GROUP))
            return value

        benchmark(run)


@pytest.mark.benchmark(group="dynamic-query")
class TestCachedQueries:
    def test_engine_repeat_query(self, benchmark, sparse_graph, loose_config):
        engine = DynamicCFCM(_dynamic_copy(sparse_graph), seed=0,
                             config=loose_config)
        engine.query(4, method="schur")  # warm the cache once
        benchmark(lambda: engine.query(4, method="schur"))

    def test_scratch_repeat_query(self, benchmark, sparse_graph, loose_config):
        snapshot = _dynamic_copy(sparse_graph).snapshot()
        benchmark(lambda: maximize_cfcc(snapshot, 4, method="schur", seed=0,
                                        config=loose_config))


@pytest.mark.benchmark(group="dynamic-workload")
class TestUpdateHeavyWorkload:
    """8 updates : 1 evaluation per round — the update-heavy regime."""

    def test_engine_update_heavy(self, benchmark, sparse_graph):
        def run():
            graph = _dynamic_copy(sparse_graph)
            engine = DynamicCFCM(graph, seed=0)
            rng = np.random.default_rng(1)
            value = engine.evaluate_exact(list(GROUP))
            for _ in range(4):
                random_update_journal(graph, UPDATE_BURST, rng)
                value = engine.evaluate_exact(list(GROUP))
            return value

        benchmark(run)

    def test_scratch_update_heavy(self, benchmark, sparse_graph):
        def run():
            graph = _dynamic_copy(sparse_graph)
            rng = np.random.default_rng(1)
            value = group_cfcc(graph.snapshot(), list(GROUP))
            for _ in range(4):
                random_update_journal(graph, UPDATE_BURST, rng)
                value = group_cfcc(graph.snapshot(), list(GROUP))
            return value

        benchmark(run)
