"""Forest-sampling benchmarks — lockstep vectorised batches vs the scalar loop.

Sweeps the three ways this library can draw a batch of rooted spanning
forests:

* **scalar** — the per-forest Python loop of
  :func:`repro.sampling.sample_rooted_forest` (the pre-vectorisation
  default, still the building block of the process-pool path);
* **lockstep** — the vectorised cycle-popping kernel of
  :func:`repro.sampling.sample_forest_batch_vectorized`;
* **pool** — the scalar sampler fanned out over a
  ``ProcessPoolExecutor`` (``sample_forest_batch(..., method="scalar",
  workers=...)``), the fallback for batches too large for the lockstep
  state.

The sweep covers graph size ``n``, batch size ``B`` and root-set size
``|S|`` (roots are the top-degree hubs, matching how the CFCM algorithms
root their forests: greedy roots at the growing group, SchurCFCM enlarges
the root set with hubs on purpose).  Every timed lockstep batch is also
validated against the graph, so the benchmark doubles as a correctness
check.

Besides the pytest-benchmark suite this module is runnable standalone, so
CI can exercise it cheaply and gate on the lockstep kernel actually being
faster::

    PYTHONPATH=src python benchmarks/bench_sampling.py --smoke
    PYTHONPATH=src python benchmarks/bench_sampling.py --n 2000 --batch 128
"""

from __future__ import annotations

import argparse
import time

import numpy as np
import pytest

from repro import obs
from repro.experiments.report import (
    metrics_prefix_for,
    percentiles_ms,
    write_bench_artifact,
    write_obs_artifacts,
)
from repro.graph import generators
from repro.sampling import (
    sample_forest_batch,
    sample_forest_batch_vectorized,
    sample_rooted_forest,
)

BENCH_BATCH = 32


def _hub_roots(graph, count: int):
    """The ``count`` highest-degree nodes, sorted (CFCM-style root sets)."""
    return sorted(int(v) for v in np.argsort(-graph.degrees)[:count])


@pytest.mark.benchmark(group="sampling-batch")
class TestBatchSampling:
    """Scalar loop vs lockstep kernel on the standard benchmark stand-ins."""

    def test_scalar_loop(self, benchmark, sparse_graph):
        roots = _hub_roots(sparse_graph, 4)

        def run():
            rng = np.random.default_rng(0)
            return [sample_rooted_forest(sparse_graph, roots, seed=rng)
                    for _ in range(BENCH_BATCH)]

        benchmark(run)

    def test_lockstep_batch(self, benchmark, sparse_graph):
        roots = _hub_roots(sparse_graph, 4)
        benchmark(lambda: sample_forest_batch_vectorized(
            sparse_graph, roots, BENCH_BATCH, seed=0))

    def test_lockstep_batch_dense(self, benchmark, dense_graph):
        roots = _hub_roots(dense_graph, 4)
        benchmark(lambda: sample_forest_batch_vectorized(
            dense_graph, roots, BENCH_BATCH, seed=0))


@pytest.mark.benchmark(group="sampling-postprocess")
class TestBatchPostprocessing:
    """Batched ForestBatch kernels vs per-forest derived quantities."""

    def test_per_forest_subtree_sums(self, benchmark, sparse_graph):
        roots = _hub_roots(sparse_graph, 4)
        forests = sample_forest_batch(sparse_graph, roots, BENCH_BATCH, seed=0)
        weights = np.ones((8, sparse_graph.n))

        def run():
            return [forest.subtree_sums(weights) for forest in forests]

        benchmark(run)

    def test_batched_subtree_sums(self, benchmark, sparse_graph):
        roots = _hub_roots(sparse_graph, 4)
        batch = sample_forest_batch_vectorized(sparse_graph, roots,
                                               BENCH_BATCH, seed=0)
        weights = np.ones((8, sparse_graph.n))
        benchmark(lambda: batch.subtree_sums(weights))


# --------------------------------------------------------------------------
# Standalone sweep (also the CI smoke run)
# --------------------------------------------------------------------------

def _time_best_of(repeats, fn):
    """All per-repeat timings (seconds) plus the last result."""
    times = []
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return times, result


def run_sampling_comparison(configs, repeats: int = 3, seed: int = 0,
                            pool_workers: int = 0, verbose: bool = True):
    """Time scalar vs lockstep (vs process pool) batch draws per config.

    ``configs`` is an iterable of ``(n, ba_m, root_count, batch)`` tuples;
    each graph is a Barabási–Albert stand-in rooted at its top-degree hubs.
    Every lockstep batch is validated against its graph.  Returns one result
    dict per config.
    """
    rows = []
    for n, ba_m, root_count, batch in configs:
        graph = generators.barabasi_albert(int(n), int(ba_m), seed=seed)
        roots = _hub_roots(graph, int(root_count))

        def scalar_draw():
            rng = np.random.default_rng(seed + 1)
            return [sample_rooted_forest(graph, roots, seed=rng)
                    for _ in range(batch)]

        scalar_times, _ = _time_best_of(repeats, scalar_draw)
        lockstep_times, lockstep_batch = _time_best_of(
            repeats,
            lambda: sample_forest_batch_vectorized(graph, roots, batch,
                                                   seed=seed + 1),
        )
        scalar_seconds = min(scalar_times)
        lockstep_seconds = min(lockstep_times)
        # The timings only compare identically distributed draws if the
        # lockstep batch is a genuine forest sample; validate it.
        lockstep_batch.forest(0).validate_against(graph)
        if not np.all(lockstep_batch.tree_sizes().sum(axis=1) == graph.n):
            raise AssertionError("lockstep batch does not span the graph")

        pool_seconds = None
        if pool_workers > 0:
            pool_times, _ = _time_best_of(
                1,
                lambda: sample_forest_batch(graph, roots, batch,
                                            seed=seed + 1,
                                            workers=pool_workers,
                                            method="scalar"),
            )
            pool_seconds = min(pool_times)

        row = {
            "n": int(n),
            "ba_m": int(ba_m),
            "roots": int(root_count),
            "batch": int(batch),
            "scalar_seconds": scalar_seconds,
            "lockstep_seconds": lockstep_seconds,
            "pool_seconds": pool_seconds,
            "speedup": scalar_seconds / lockstep_seconds
            if lockstep_seconds else float("inf"),
            "scalar_draw_latency": percentiles_ms(scalar_times),
            "lockstep_draw_latency": percentiles_ms(lockstep_times),
        }
        rows.append(row)
        if verbose:
            pool_text = (f"  pool({pool_workers}) {pool_seconds:.4f}s"
                         if pool_seconds is not None else "")
            print(f"n={n:>5} |S|={root_count:>3} B={batch:>4}  "
                  f"scalar {scalar_seconds:.4f}s  "
                  f"lockstep {lockstep_seconds:.4f}s  "
                  f"(x{row['speedup']:.2f}){pool_text}")
    return rows


SMOKE_CONFIGS = (
    # The CFCM hot path: n ≈ 1000, forests rooted at a hub group.  The
    # lockstep kernel must beat the scalar loop clearly here (the
    # acceptance regime: >= 3x locally, --min-speedup gates CI).
    (1000, 3, 4, 64),
    # Worst-case single-root draw, reported but not gated: the lockstep
    # win is thinner when the root set holds no hubs.
    (1000, 3, 1, 64),
)

FULL_CONFIGS = tuple(
    (n, 3, root_count, batch)
    for n in (500, 1000, 2000)
    for root_count in (1, 4, 16)
    for batch in (32, 128)
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Scalar vs lockstep vs process-pool forest sampling")
    parser.add_argument("--n", type=int, nargs="+", default=None,
                        help="graph sizes to sweep (default: full sweep)")
    parser.add_argument("--batch", type=int, nargs="+", default=[32, 128],
                        help="batch sizes to sweep")
    parser.add_argument("--roots", type=int, nargs="+", default=[1, 4, 16],
                        help="root-set sizes to sweep (top-degree hubs)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--pool-workers", type=int, default=0,
                        help="also time the process-pool scalar path")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the gated config's lockstep "
                             "speedup reaches this (default 1.5 in --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed sweep for the CI perf gate")
    parser.add_argument("--output-json", default=None,
                        help="path of the JSON artifact (default in --smoke "
                             "mode: BENCH_sampling.json)")
    args = parser.parse_args(argv)

    output = args.output_json
    own_registry = not obs.REGISTRY.enabled
    if own_registry:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
    try:
        if args.smoke:
            output = output or "BENCH_sampling.json"
            min_speedup = args.min_speedup if args.min_speedup is not None else 1.5
            rows = run_sampling_comparison(SMOKE_CONFIGS, repeats=args.repeats,
                                           seed=args.seed,
                                           pool_workers=args.pool_workers)
            gated = rows[0]
            if not np.isfinite(gated["speedup"]):
                raise AssertionError("non-finite lockstep timing")
            if gated["speedup"] < min_speedup:
                raise AssertionError(
                    f"lockstep sampler too slow on the smoke config: "
                    f"x{gated['speedup']:.2f} < x{min_speedup:.2f} "
                    f"(scalar {gated['scalar_seconds']:.4f}s, "
                    f"lockstep {gated['lockstep_seconds']:.4f}s)"
                )
        else:
            if args.n is None:
                configs = FULL_CONFIGS
            else:
                configs = tuple((n, 3, r, b) for n in args.n
                                for r in args.roots for b in args.batch)
            rows = run_sampling_comparison(configs, repeats=args.repeats,
                                           seed=args.seed,
                                           pool_workers=args.pool_workers)
            if args.min_speedup is not None:
                slow = [row for row in rows if row["speedup"] < args.min_speedup]
                if slow:
                    raise AssertionError(
                        f"{len(slow)} configs below x{args.min_speedup:.2f}"
                    )
    except AssertionError as exc:
        print(f"[bench_sampling] smoke check FAILED: {exc}")
        return 1
    finally:
        if own_registry:
            obs.REGISTRY.disable()
    if output:
        write_bench_artifact(rows, output, benchmark="sampling_lockstep")
        write_obs_artifacts(metrics_prefix_for(output), label="bench_sampling")
    headline = max(rows, key=lambda row: row["speedup"])
    print(f"[bench_sampling] {len(rows)} configs compared; best lockstep "
          f"speedup x{headline['speedup']:.2f} "
          f"(n={headline['n']}, |S|={headline['roots']}, "
          f"B={headline['batch']}); all batches validated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
