"""Fig. 4 / Fig. 5 benchmarks — behaviour as the error parameter eps varies.

Fig. 4 shape: running time of both sampling algorithms grows as eps shrinks
(more JL directions, more samples before the Bernstein rule fires), with
SchurCFCM at or below ForestCFCM at every eps.

Fig. 5 shape: solution quality relative to the exact greedy improves (the
relative difference shrinks) as eps decreases; the assertions bound the
difference at the tight end of the sweep.
"""

from __future__ import annotations

import pytest

from repro.centrality.cfcc import group_cfcc
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.forest_cfcm import ForestCFCM
from repro.centrality.schur_cfcm import SchurCFCM

K = 5


@pytest.mark.benchmark(group="fig4-eps-runtime-forest")
class TestForestEpsSweep:
    def test_eps_030(self, benchmark, smallworld_graph, loose_config):
        benchmark(lambda: ForestCFCM(smallworld_graph, seed=3,
                                     config=loose_config).run(K))

    def test_eps_020(self, benchmark, smallworld_graph, bench_config):
        benchmark(lambda: ForestCFCM(smallworld_graph, seed=3,
                                     config=bench_config).run(K))

    def test_eps_015(self, benchmark, smallworld_graph, tight_config):
        benchmark(lambda: ForestCFCM(smallworld_graph, seed=3,
                                     config=tight_config).run(K))


@pytest.mark.benchmark(group="fig4-eps-runtime-schur")
class TestSchurEpsSweep:
    def test_eps_030(self, benchmark, smallworld_graph, loose_config):
        benchmark(lambda: SchurCFCM(smallworld_graph, seed=3,
                                    config=loose_config).run(K))

    def test_eps_020(self, benchmark, smallworld_graph, bench_config):
        benchmark(lambda: SchurCFCM(smallworld_graph, seed=3,
                                    config=bench_config).run(K))

    def test_eps_015(self, benchmark, smallworld_graph, tight_config):
        benchmark(lambda: SchurCFCM(smallworld_graph, seed=3,
                                    config=tight_config).run(K))


@pytest.mark.benchmark(group="fig5-eps-quality")
class TestQualityVersusExact:
    def test_schur_quality_tight_eps(self, benchmark, sparse_graph, tight_config):
        exact_value = group_cfcc(sparse_graph, ExactGreedy(sparse_graph).run(K).group)
        result = benchmark(lambda: SchurCFCM(sparse_graph, seed=4,
                                             config=tight_config).run(K))
        value = group_cfcc(sparse_graph, result.group)
        assert (exact_value - value) / exact_value < 0.15

    def test_forest_quality_tight_eps(self, benchmark, sparse_graph, tight_config):
        exact_value = group_cfcc(sparse_graph, ExactGreedy(sparse_graph).run(K).group)
        result = benchmark(lambda: ForestCFCM(sparse_graph, seed=4,
                                              config=tight_config).run(K))
        value = group_cfcc(sparse_graph, result.group)
        assert (exact_value - value) / exact_value < 0.2
