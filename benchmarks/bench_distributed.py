"""Sharded vs single-tracker serving throughput (repro.distributed).

One workload, two engines: a stream of edge reweights interleaved with
trace (group-CFCC) and resistance queries runs once through a single
:class:`repro.dynamic.DynamicCFCM` and once through a
:class:`repro.distributed.ShardedCFCM` over the same lattice, each engine
owning its own :class:`DynamicGraph` fed the identical mutation sequence
(sharing one graph would let either engine's journal compaction starve the
other's trackers).

The sharded win on a single core is *solver locality*: splu factor time and
per-column solve time both grow superlinearly in ``n``, so four
quarter-sized trackers beat one full-sized tracker even executed back to
back — the Schur stitch itself is a handful of dense BLAS-3 calls over the
separator block.  On multi-core hosts the thread executor overlaps the
per-shard work on top of that.

Gates (checked by ``main``):

* smoke mode (CI) — both engines match the from-scratch dense reference to
  1e-8 on a small lattice, dense backends end to end;
* full mode (``--side 320 --shards 4``, n = 102 400) — sampled sharded
  resistances match a fresh global splu reference to 1e-8 and aggregate
  update+query throughput is >= 2.5x the single-tracker engine.  Trace
  queries at that scale are served sketched (both engines, same
  convention), so the 1e-8 surface is the exact resistance path.

Standalone::

    PYTHONPATH=src python benchmarks/bench_distributed.py --smoke
    PYTHONPATH=src python benchmarks/bench_distributed.py --side 320 \\
        --shards 4 --cycles 16
"""

from __future__ import annotations

import argparse
import time

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs
from repro.distributed import ShardedCFCM
from repro.dynamic import DynamicCFCM, DynamicGraph
from repro.experiments.report import (
    metrics_prefix_for,
    percentiles_ms,
    write_bench_artifact,
    write_obs_artifacts,
)
from repro.graph import generators


def _strip_seeds(rows: int, cols: int, shards: int) -> list:
    """Seed nodes at strip centres so the partition cuts along grid rows."""
    return [((2 * i + 1) * rows // (2 * shards)) * cols + cols // 2
            for i in range(shards)]


def _workload(rows: int, cols: int, cycles: int, updates: int,
              queries: int, seed: int):
    """Deterministic mutation/query schedule shared by both engines.

    Reweight-only churn (weight toggles between 1 and 2 on lattice edges):
    removals would route both engines through the same pure-Python
    disconnection guard and measure that instead of the solvers.
    """
    rng = np.random.default_rng(seed)
    graph = generators.grid_graph(rows, cols)
    edges = list(graph.edges())
    n = rows * cols
    plan = []
    for _ in range(cycles):
        picks = rng.choice(len(edges), size=updates, replace=False)
        probes = rng.integers(0, n, size=queries)
        plan.append(([tuple(edges[p]) for p in picks],
                     [int(x) for x in probes]))
    return plan


def _drive(engine, graph, plan, group):
    """Apply the schedule through one engine.

    Returns ``(seconds, latencies, warmup_seconds)``.  The warmup — first
    factorisation, group-state build, probe caches — runs outside the timed
    window for both engines: the gate measures steady-state update+query
    throughput, and the one-time builds are reported separately.
    """
    warmup_start = time.perf_counter()
    engine.evaluate_exact(group)
    _resistance(engine, next(x for x in plan[0][1] if x not in group), group)
    warmup = time.perf_counter() - warmup_start
    query_lat = []
    start = time.perf_counter()
    for edge_picks, probes in plan:
        for u, v in edge_picks:
            graph.update_weight(u, v, 3.0 - graph.weight(u, v))  # toggle 1<->2
        t0 = time.perf_counter()
        engine.evaluate_exact(group)
        for node in probes:
            if node not in group:
                _resistance(engine, node, group)
        query_lat.append(time.perf_counter() - t0)
    return time.perf_counter() - start, query_lat, warmup


def _resistance(engine, node, group):
    if isinstance(engine, ShardedCFCM):
        return engine.resistance_to_group(node, group)
    return engine.tracker(group).resistance_to_group(node)


def _splu_reference_diag(graph: DynamicGraph, group, nodes):
    """Exact grounded resistances from a fresh global factorisation."""
    lap = graph.laplacian_sparse().tocsc()
    grounded = set(graph.compact_nodes(group))
    keep = np.array([i for i in range(graph.n) if i not in grounded])
    lu = spla.splu(lap[np.ix_(keep, keep)].tocsc())
    position = {int(c): i for i, c in enumerate(keep)}
    out = {}
    for node in nodes:
        row = position[graph.compact_index(node)]
        rhs = np.zeros(len(keep))
        rhs[row] = 1.0
        out[node] = float(lu.solve(rhs)[row])
    return out


def run_comparison(rows: int, cols: int, shards: int, cycles: int,
                   updates: int, queries: int, seed: int,
                   backend: str, executor: str, check_nodes: int = 16):
    """One head-to-head run; returns a ``BENCH_*.json`` row."""
    n = rows * cols
    group = (0, n // 2 + cols // 2)
    plan = _workload(rows, cols, cycles, updates, queries, seed)

    graph_single = DynamicGraph(generators.grid_graph(rows, cols))
    single = DynamicCFCM(graph_single, seed=seed, backend=backend)
    single_seconds, single_lat, single_warm = _drive(
        single, graph_single, plan, group)

    graph_sharded = DynamicGraph(generators.grid_graph(rows, cols))
    sharded = ShardedCFCM(graph_sharded, shards=shards, seed=seed,
                          backend=backend, executor=executor,
                          seeds=_strip_seeds(rows, cols, shards))
    sharded_seconds, sharded_lat, sharded_warm = _drive(
        sharded, graph_sharded, plan, group)
    sharded.close()

    # Exactness: sampled resistances from both engines against one fresh
    # global factorisation of the final (identical) graph state.
    rng = np.random.default_rng(seed + 1)
    sample = [int(x) for x in rng.integers(0, n, size=check_nodes)
              if int(x) not in group]
    reference = _splu_reference_diag(graph_sharded, group, sample)
    errs_single = [abs(_resistance(single, x, group) - reference[x])
                   for x in sample]
    errs_sharded = [abs(_resistance(sharded, x, group) - reference[x])
                    for x in sample]

    return {
        "n": n,
        "rows": rows,
        "cols": cols,
        "shards": shards,
        "cycles": cycles,
        "updates_per_cycle": updates,
        "queries_per_cycle": queries,
        "backend": backend,
        "executor": executor,
        "separator_nodes": len(sharded.partition.separator),
        "single_seconds": single_seconds,
        "sharded_seconds": sharded_seconds,
        "single_warmup_seconds": single_warm,
        "sharded_warmup_seconds": sharded_warm,
        "speedup": single_seconds / sharded_seconds,
        "single_cycle_ms": percentiles_ms(single_lat),
        "sharded_cycle_ms": percentiles_ms(sharded_lat),
        "max_resistance_err_single": max(errs_single),
        "max_resistance_err_sharded": max(errs_sharded),
    }


def run_smoke_exactness(seed: int = 0):
    """Dense-backend end-to-end 1e-8 gate on a small lattice."""
    rows, cols = 8, 24
    n = rows * cols
    plan = _workload(rows, cols, cycles=3, updates=12, queries=4, seed=seed)
    graph = DynamicGraph(generators.grid_graph(rows, cols))
    engine = ShardedCFCM(graph, shards=4, seed=seed, backend="dense",
                         coupling="exact")
    group = (0, n // 2)
    _drive(engine, graph, plan, group)

    lap = graph.laplacian_dense()
    grounded = set(graph.compact_nodes(group))
    keep = [i for i in range(n) if i not in grounded]
    inverse = np.linalg.inv(lap[np.ix_(keep, keep)])
    position = {c: i for i, c in enumerate(keep)}
    cfcc_ref = n / np.trace(inverse)
    cfcc_err = abs(engine.evaluate_exact(group) - cfcc_ref)
    diag_err = max(
        abs(engine.resistance_to_group(node, group)
            - inverse[position[graph.compact_index(node)],
                      position[graph.compact_index(node)]])
        for node in range(n) if node not in grounded
    )
    return {"n": n, "cfcc_err": cfcc_err, "max_resistance_err": diag_err}


@pytest.mark.benchmark(group="distributed")
class TestShardedThroughput:
    """pytest-benchmark smoke pair: one cycle through each engine."""

    ROWS, COLS = 8, 24

    def _plan(self):
        return _workload(self.ROWS, self.COLS, cycles=1, updates=8,
                         queries=2, seed=0)

    def test_single_tracker_cycle(self, benchmark):
        plan = self._plan()

        def run():
            graph = DynamicGraph(generators.grid_graph(self.ROWS, self.COLS))
            engine = DynamicCFCM(graph, seed=0, backend="dense")
            return _drive(engine, graph, plan, (0,))[0]

        benchmark(run)

    def test_sharded_cycle(self, benchmark):
        plan = self._plan()

        def run():
            graph = DynamicGraph(generators.grid_graph(self.ROWS, self.COLS))
            engine = ShardedCFCM(graph, shards=4, seed=0, backend="dense")
            return _drive(engine, graph, plan, (0,))[0]

        benchmark(run)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded vs single-tracker update+query throughput")
    parser.add_argument("--side", type=int, default=320,
                        help="lattice side (n = side^2)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--cycles", type=int, default=16)
    parser.add_argument("--updates", type=int, default=48,
                        help="edge reweights per cycle")
    parser.add_argument("--queries", type=int, default=8,
                        help="resistance queries per cycle (plus one trace)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", choices=("dense", "sparse", "auto"),
                        default="sparse")
    parser.add_argument("--executor", choices=("serial", "thread", "process"),
                        default="serial")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="full-mode throughput gate (x single-tracker)")
    parser.add_argument("--smoke", action="store_true",
                        help="small dense-backend run for a CI exactness gate")
    parser.add_argument("--output-json", default=None)
    args = parser.parse_args(argv)

    output = args.output_json
    own_registry = not obs.REGISTRY.enabled
    if own_registry:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
    try:
        if args.smoke:
            output = output or "BENCH_distributed.json"
            exact = run_smoke_exactness(seed=args.seed)
            if exact["cfcc_err"] > 1e-8 or exact["max_resistance_err"] > 1e-8:
                raise AssertionError(
                    f"smoke exactness gate failed: {exact}")
            row = run_comparison(rows=8, cols=24, shards=4, cycles=2,
                                 updates=8, queries=4, seed=args.seed,
                                 backend="dense", executor="serial",
                                 check_nodes=8)
            row.update(mode="smoke", **{f"exact_{k}": v
                                        for k, v in exact.items()})
            rows = [row]
        else:
            row = run_comparison(rows=args.side, cols=args.side,
                                 shards=args.shards, cycles=args.cycles,
                                 updates=args.updates, queries=args.queries,
                                 seed=args.seed, backend=args.backend,
                                 executor=args.executor)
            row["mode"] = "full"
            rows = [row]
            if row["speedup"] < args.min_speedup:
                raise AssertionError(
                    f"speedup {row['speedup']:.2f}x below the "
                    f"{args.min_speedup}x gate (single "
                    f"{row['single_seconds']:.2f}s, sharded "
                    f"{row['sharded_seconds']:.2f}s)")
        for row in rows:
            if row["max_resistance_err_sharded"] > 1e-8:
                raise AssertionError(
                    "sharded resistances diverged from the reference: "
                    f"{row['max_resistance_err_sharded']:.2e}")
    except AssertionError as exc:
        print(f"[bench_distributed] FAILED: {exc}")
        return 1
    finally:
        if own_registry:
            obs.REGISTRY.disable()
    if output:
        write_bench_artifact(rows, output, benchmark="distributed_scaling")
        write_obs_artifacts(metrics_prefix_for(output),
                            label="bench_distributed")
    for row in rows:
        print(f"[bench_distributed] n={row['n']} shards={row['shards']} "
              f"single={row['single_seconds']:.3f}s "
              f"sharded={row['sharded_seconds']:.3f}s "
              f"speedup={row['speedup']:.2f}x "
              f"max_err={row['max_resistance_err_sharded']:.2e}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
