"""Scenario-sweep benchmark — the worlds harness as a gated CI smoke.

Runs the canonical smoke cross of :func:`repro.worlds.smoke_specs` (seven
worlds crossing topology x churn regime x backend x execution mode) through
:func:`repro.worlds.sweep` and applies the sweep gates: every world must
stay within its forest/exact accuracy tolerance against a from-scratch
reference and keep its worst pool ESS above half the configured floor.

Besides the pytest-benchmark suite this module is runnable standalone::

    PYTHONPATH=src python benchmarks/bench_worlds.py --smoke
    PYTHONPATH=src python benchmarks/bench_worlds.py --count 12 --seed 3

``--smoke`` writes the ``WORLDS_smoke.json`` artifact (uploaded per-commit
by CI next to the ``BENCH_*.json`` family) and exits non-zero when a gate
fails.  Latency percentiles inside the rows come from the
``repro_engine_op_seconds`` registry histogram, not from any timing done
here.
"""

from __future__ import annotations

import argparse

import pytest

from repro.worlds import (
    WorldSampler,
    gate_rows,
    run_world,
    smoke_specs,
    sweep,
    write_worlds_artifacts,
)

#: the smoke cross must keep covering at least this many worlds and these
#: axes; the assertions below keep the gate honest against future edits.
MIN_SMOKE_WORLDS = 6


def run_smoke(verbose: bool = True):
    """Run the canonical cross; returns (rows, failure strings)."""
    specs = smoke_specs()
    assert len(specs) >= MIN_SMOKE_WORLDS, "smoke cross shrank below the floor"
    assert len({spec.topology for spec in specs}) >= 4
    assert len({spec.churn.regime for spec in specs}) >= 4
    assert len({spec.backend for spec in specs}) >= 2
    rows = sweep(specs, verbose=verbose)
    return rows, gate_rows(rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Scenario sweep over topology x churn x backend worlds")
    parser.add_argument("--count", type=int, default=8,
                        help="sampled worlds for a non-smoke run")
    parser.add_argument("--events", type=int, default=24,
                        help="churn events per sampled world")
    parser.add_argument("--seed", type=int, default=0, help="sampler seed")
    parser.add_argument("--smoke", action="store_true",
                        help="run the canonical CI cross and gate on "
                             "accuracy + ESS (non-zero exit on failure)")
    parser.add_argument("--output-json", default=None,
                        help="path of the JSON artifact (default in --smoke "
                             "mode: WORLDS_smoke.json)")
    parser.add_argument("--output-csv", default=None,
                        help="also write the sweep table as CSV")
    args = parser.parse_args(argv)

    output = args.output_json
    if args.smoke:
        output = output or "WORLDS_smoke.json"
        rows, failures = run_smoke()
    else:
        sampler = WorldSampler(events=args.events, seed=args.seed)
        rows = sweep(sampler.sample(args.count), verbose=True)
        failures = gate_rows(rows)
    write_worlds_artifacts(rows, json_path=output, csv_path=args.output_csv,
                           label="worlds_smoke" if args.smoke else "worlds")
    if failures:
        for failure in failures:
            print(f"[bench_worlds] GATE FAILURE: {failure}")
        return 1
    print(f"[bench_worlds] all {len(rows)} worlds within accuracy tolerance "
          "and ESS floor")
    return 0


# --------------------------------------------------------------------------
# pytest-benchmark suite
# --------------------------------------------------------------------------

@pytest.mark.benchmark(group="worlds")
class TestWorldsSweep:
    """End-to-end world runs, one per stress regime."""

    def test_bursty_joins_world(self, benchmark):
        spec = smoke_specs()[0]
        benchmark(lambda: run_world(spec, verbose=False))

    def test_adversarial_deletions_world(self, benchmark):
        spec = smoke_specs()[1]
        benchmark(lambda: run_world(spec, verbose=False))

    def test_reweight_storm_world(self, benchmark):
        spec = smoke_specs()[3]
        benchmark(lambda: run_world(spec, verbose=False))


if __name__ == "__main__":
    raise SystemExit(main())
