"""Fig. 1 benchmarks — greedy methods against the brute-force optimum.

Measures the cost of the exhaustive optimum versus the greedy algorithms on a
tiny graph (the only regime where the optimum is computable) and asserts the
Fig. 1 effectiveness shape: every greedy variant reaches at least 95% of the
optimal CFCC.
"""

from __future__ import annotations

import pytest

from repro.centrality.cfcc import group_cfcc
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.forest_cfcm import ForestCFCM
from repro.centrality.optimum import optimum_cfcm
from repro.centrality.schur_cfcm import SchurCFCM

K = 3


@pytest.mark.benchmark(group="fig1-optimum")
class TestOptimumComparison:
    def test_brute_force_optimum(self, benchmark, tiny_graph):
        result = benchmark(lambda: optimum_cfcm(tiny_graph, K))
        assert result.cfcc is not None

    def test_exact_greedy(self, benchmark, tiny_graph):
        best = optimum_cfcm(tiny_graph, K).cfcc
        result = benchmark(lambda: ExactGreedy(tiny_graph).run(K))
        assert group_cfcc(tiny_graph, result.group) >= 0.95 * best

    def test_forest_cfcm(self, benchmark, tiny_graph, bench_config):
        best = optimum_cfcm(tiny_graph, K).cfcc
        result = benchmark(lambda: ForestCFCM(tiny_graph, seed=0,
                                              config=bench_config).run(K))
        assert group_cfcc(tiny_graph, result.group) >= 0.9 * best

    def test_schur_cfcm(self, benchmark, tiny_graph, bench_config):
        best = optimum_cfcm(tiny_graph, K).cfcc
        result = benchmark(lambda: SchurCFCM(tiny_graph, seed=0,
                                             config=bench_config).run(K))
        assert group_cfcc(tiny_graph, result.group) >= 0.9 * best
