"""Forest-pool benchmarks — importance-weighted reuse vs flush-and-redraw.

Two comparisons, both doubling as correctness gates:

* **Churn workload** — a :class:`repro.dynamic.DynamicCFCM` engine answers
  ``evaluate_forest`` after every burst of edge churn (plus occasional node
  insertions).  The importance-weighted pool reweights stored forests and
  redraws only the ESS deficit; the baseline redraws the whole pool from the
  current snapshot every round (exactly what the retired flush-on-drift
  policy did under sustained churn, where every burst breached the drift
  budget).  Both estimates are checked against the exact incremental
  inverse, so the timing comparison cannot drift apart semantically.
* **Estimator fold** — folding one ``(B, n)`` :class:`ForestBatch` into a
  :class:`repro.centrality.estimators.ForestAccumulator` with the batched
  lane-walk kernel (``method="batched"``) vs the per-forest scalar reference
  (``method="scalar"``); the running sums are cross-checked to 1e-9.

Runnable standalone (and wired into the CI bench-smoke job)::

    PYTHONPATH=src python benchmarks/bench_pool.py --smoke
    PYTHONPATH=src python benchmarks/bench_pool.py --n 1200 --pool 96
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import obs
from repro.centrality.estimators import ForestAccumulator, rademacher_weights
from repro.dynamic import DynamicCFCM, DynamicGraph
from repro.experiments.report import (
    metrics_prefix_for,
    percentiles_ms,
    write_bench_artifact,
    write_obs_artifacts,
)
from repro.graph import generators
from repro.sampling import sample_forest_batch_vectorized


def _hub_roots(graph, count: int):
    return sorted(int(v) for v in np.argsort(-graph.degrees)[:count])


def _churn_round(graph: DynamicGraph, rng: np.random.Generator,
                 events: int, node_probability: float) -> None:
    """One burst of edge churn (insert-heavy, with optional node joins)."""
    for _ in range(events):
        nodes = [int(v) for v in graph.node_ids()]
        move = rng.random()
        if move < node_probability:
            attach = rng.choice(nodes, size=2, replace=False)
            graph.add_node([int(attach[0]), int(attach[1])])
            continue
        if move < node_probability + 0.6:
            for _ in range(30):
                u, v = (int(x) for x in rng.choice(nodes, size=2, replace=False))
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    break
            continue
        edges = list(graph.edges())
        for index in rng.permutation(len(edges)):
            u, v = edges[int(index)]
            try:
                graph.remove_edge(u, v)
                break
            except Exception:
                continue


def _flush_and_redraw_estimate(graph: DynamicGraph, group, pool_size: int,
                               rng: np.random.Generator) -> float:
    """The retired policy: a full fresh pool from the current snapshot."""
    snapshot = graph.snapshot()
    roots = graph.compact_nodes(group)
    batch = sample_forest_batch_vectorized(snapshot, roots, pool_size, seed=rng)
    accumulator = ForestAccumulator(snapshot, roots, seed=rng)
    accumulator.add_batch(batch)
    return graph.n / float(np.sum(accumulator.diag_estimates()))


def run_churn_comparison(n: int, pool_size: int, rounds: int,
                         events_per_round: int, node_probability: float,
                         ba_m: int = 8, ess_floor: float = 0.25,
                         seed: int = 0, tolerance: float = 0.35,
                         verbose: bool = True) -> dict:
    """Time pooled reuse vs flush-and-redraw on identical churn journals.

    Both strategies answer one forest-mode evaluation per churn round; each
    answer is checked against the exact incremental inverse at the same
    version (within ``tolerance`` — both are Monte Carlo estimates of the
    configured pool size).

    ``ba_m`` sets the density, which is what decides the regime: a random
    edge's forest-inclusion probability is ``≈ (n - |S|) / m``, so on a
    sparse graph (``ba_m=3``: ~1/3) every event genuinely invalidates a
    third of the distribution's mass and reuse degrades to flush speed,
    while at ``ba_m=8`` (~1/8) stored forests stay importance-usable across
    many events and reuse redraws a fraction of the pool per round.
    ``ess_floor`` is the churn-tuned pool policy (the engine default of 0.5
    replaces stale mass more eagerly; 0.25 halves the redraw volume at an
    accuracy cost the exact cross-check shows to be negligible here).
    """
    base = generators.barabasi_albert(n, ba_m, seed=seed)
    group = _hub_roots(base, 4)

    reuse_graph = DynamicGraph(base)
    flush_graph = DynamicGraph(base)
    engine = DynamicCFCM(reuse_graph, seed=seed + 1, pool_size=pool_size,
                         ess_floor=ess_floor)
    exact_engine = DynamicCFCM(flush_graph, seed=seed + 2, pool_size=pool_size)
    flush_rng = np.random.default_rng(seed + 3)
    churn_rng = np.random.default_rng(seed + 4)
    replay_rng = np.random.default_rng(seed + 4)

    own_registry = not obs.REGISTRY.enabled
    if own_registry:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
    try:
        engine.evaluate_forest(group)  # warm pool: steady-state reuse regime
        reuse_latencies: list = []
        flush_latencies: list = []
        worst_reuse = worst_flush = 0.0
        for _ in range(rounds):
            _churn_round(reuse_graph, churn_rng, events_per_round,
                         node_probability)
            _churn_round(flush_graph, replay_rng, events_per_round,
                         node_probability)

            start = time.perf_counter()
            reuse_value = engine.evaluate_forest(group)
            reuse_latencies.append(time.perf_counter() - start)

            start = time.perf_counter()
            flush_value = _flush_and_redraw_estimate(flush_graph, group,
                                                     pool_size, flush_rng)
            flush_latencies.append(time.perf_counter() - start)

            exact = exact_engine.evaluate_exact(group)
            worst_reuse = max(worst_reuse, abs(reuse_value - exact) / exact)
            worst_flush = max(worst_flush, abs(flush_value - exact) / exact)
    finally:
        if own_registry:
            obs.REGISTRY.disable()
    reuse_seconds = sum(reuse_latencies)
    flush_seconds = sum(flush_latencies)

    if worst_reuse > tolerance or worst_flush > tolerance:
        raise AssertionError(
            f"pool estimates off the exact reference: reuse {worst_reuse:.3f}, "
            f"flush {worst_flush:.3f} (tolerance {tolerance})"
        )
    stats = engine.stats
    row = {
        "n": n,
        "ba_m": ba_m,
        "pool_size": pool_size,
        "rounds": rounds,
        "events_per_round": events_per_round,
        "node_probability": node_probability,
        "ess_floor": ess_floor,
        "reuse_seconds": reuse_seconds,
        "flush_seconds": flush_seconds,
        "speedup": flush_seconds / reuse_seconds if reuse_seconds else float("inf"),
        "forests_resampled": stats.forests_resampled,
        "forests_reweighted": stats.forests_reweighted,
        "forests_dropped": stats.forests_dropped,
        "forests_folded": stats.forests_folded,
        "ess_topups": stats.ess_topups,
        "pools_flushed": stats.pools_flushed,
        "worst_reuse_error": worst_reuse,
        "worst_flush_error": worst_flush,
        "reuse_eval_latency": percentiles_ms(reuse_latencies),
        "flush_eval_latency": percentiles_ms(flush_latencies),
        # Recorded values survive disable(); registered at engine-module
        # import, so get() cannot miss.
        "engine_op_histogram":
            obs.REGISTRY.get("repro_engine_op_seconds").summary(),
    }
    if verbose:
        print(f"[churn] n={n} B={pool_size} rounds={rounds}  "
              f"reuse {reuse_seconds:.3f}s  flush {flush_seconds:.3f}s  "
              f"(x{row['speedup']:.2f}; redrew {stats.forests_resampled} of "
              f"{pool_size * rounds} flush-equivalent forests)")
    return row


def run_fold_comparison(n: int, batch: int, jl_rows: int, repeats: int = 3,
                        seed: int = 0, verbose: bool = True) -> dict:
    """Time the batched ``(B, n)`` estimator fold vs the scalar reference."""
    graph = generators.barabasi_albert(n, 3, seed=seed)
    roots = _hub_roots(graph, 4)
    jl = rademacher_weights(jl_rows, n, roots, np.random.default_rng(seed))
    forests = sample_forest_batch_vectorized(graph, roots, batch, seed=seed + 1)

    def timed(method: str):
        times = []
        accumulator = None
        for _ in range(max(1, repeats)):
            accumulator = ForestAccumulator(graph, roots, weights=jl,
                                            tracked_roots=[roots[0]], seed=0)
            start = time.perf_counter()
            accumulator.add_batch(forests, method=method)
            times.append(time.perf_counter() - start)
        return times, accumulator

    scalar_times, scalar_acc = timed("scalar")
    batched_times, batched_acc = timed("batched")
    scalar_seconds = min(scalar_times)
    batched_seconds = min(batched_times)
    for name in ("projected_sum", "diag_sum", "diag_sumsq", "root_counts"):
        if not np.allclose(getattr(scalar_acc, name), getattr(batched_acc, name),
                           atol=1e-9):
            raise AssertionError(f"batched fold diverged from scalar on {name}")
    row = {
        "n": n,
        "batch": batch,
        "jl_rows": jl_rows,
        "scalar_fold_seconds": scalar_seconds,
        "batched_fold_seconds": batched_seconds,
        "fold_speedup": scalar_seconds / batched_seconds
        if batched_seconds else float("inf"),
        "scalar_fold_latency": percentiles_ms(scalar_times),
        "batched_fold_latency": percentiles_ms(batched_times),
    }
    if verbose:
        print(f"[fold] n={n} B={batch} w={jl_rows}  "
              f"scalar {scalar_seconds:.4f}s  batched {batched_seconds:.4f}s  "
              f"(x{row['fold_speedup']:.2f}); sums cross-checked")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Importance-weighted pool reuse vs flush-and-redraw")
    parser.add_argument("--n", type=int, default=600, help="graph size")
    parser.add_argument("--pool", type=int, default=48, help="pool capacity")
    parser.add_argument("--rounds", type=int, default=8, help="churn rounds")
    parser.add_argument("--events", type=int, default=6,
                        help="journal events per churn round")
    parser.add_argument("--node-probability", type=float, default=0.15,
                        help="probability a churn event is a node insertion")
    parser.add_argument("--ess-floor", type=float, default=0.25,
                        help="ESS floor fraction of the reuse engine's pools")
    parser.add_argument("--ba-m", type=int, default=8,
                        help="Barabási–Albert density of the churn graph")
    parser.add_argument("--batch", type=int, default=64,
                        help="batch size of the fold comparison")
    parser.add_argument("--jl-rows", type=int, default=8,
                        help="JL weight rows of the fold comparison")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of) for the fold")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless reuse beats flush-and-redraw by "
                             "this factor (default 1.2 in --smoke)")
    parser.add_argument("--min-fold-speedup", type=float, default=None,
                        help="fail unless the batched fold beats the scalar "
                             "fold by this factor (default 1.2 in --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed sweep for the CI perf gate")
    parser.add_argument("--output-json", default=None,
                        help="path of the JSON artifact (default in --smoke "
                             "mode: BENCH_pool.json)")
    args = parser.parse_args(argv)

    output = args.output_json
    min_speedup = args.min_speedup
    min_fold = args.min_fold_speedup
    if args.smoke:
        output = output or "BENCH_pool.json"
        min_speedup = 1.2 if min_speedup is None else min_speedup
        min_fold = 1.2 if min_fold is None else min_fold

    # One registry session spans both comparisons, so the METRICS_* artifact
    # carries the churn run's engine/pool histograms alongside the fold's.
    own_registry = not obs.REGISTRY.enabled
    if own_registry:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
    try:
        churn = run_churn_comparison(args.n, args.pool, args.rounds,
                                     args.events, args.node_probability,
                                     ba_m=args.ba_m, ess_floor=args.ess_floor,
                                     seed=args.seed)
        fold = run_fold_comparison(args.n, args.batch, args.jl_rows,
                                   repeats=args.repeats, seed=args.seed)
        if min_speedup is not None and churn["speedup"] < min_speedup:
            raise AssertionError(
                f"importance-weighted reuse too slow under churn: "
                f"x{churn['speedup']:.2f} < x{min_speedup:.2f} "
                f"(reuse {churn['reuse_seconds']:.3f}s, "
                f"flush {churn['flush_seconds']:.3f}s)"
            )
        if min_fold is not None and fold["fold_speedup"] < min_fold:
            raise AssertionError(
                f"batched estimator fold too slow: "
                f"x{fold['fold_speedup']:.2f} < x{min_fold:.2f} "
                f"(scalar {fold['scalar_fold_seconds']:.4f}s, "
                f"batched {fold['batched_fold_seconds']:.4f}s)"
            )
    except AssertionError as exc:
        print(f"[bench_pool] smoke check FAILED: {exc}")
        return 1
    finally:
        if own_registry:
            obs.REGISTRY.disable()
    rows = [dict(churn, comparison="churn"), dict(fold, comparison="fold")]
    if output:
        write_bench_artifact(rows, output, benchmark="pool_reuse")
        write_obs_artifacts(metrics_prefix_for(output), label="bench_pool")
    print(f"[bench_pool] churn reuse x{churn['speedup']:.2f}, "
          f"batched fold x{fold['fold_speedup']:.2f}; "
          "all estimates checked against the exact reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
