#!/usr/bin/env python
"""Lint: docs/observability.md must document every registered metric.

The metric reference in ``docs/observability.md`` claims to be complete;
this check keeps that claim honest.  It imports every instrumented module
(registering the module-level ``repro_*`` histograms/counters/gauges on the
default registry), binds engine and service health collectors on tiny real
instances (registering the health gauge families, whose names are built
with f-strings and therefore invisible to a literal grep), and then fails
if any registered metric name is missing from the docs page.

Documented-but-unregistered names are reported as warnings only: the docs
may legitimately mention metric names in prose before code lands, but a
*registered* metric without documentation is a broken contract.

Exit status is non-zero on missing documentation (CI gates on it)::

    PYTHONPATH=src python scripts/check_docs_metrics.py
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs" / "observability.md"
NAME = re.compile(r"\brepro_[a-z0-9_]+\b")


def registered_metric_names() -> set:
    """Every metric name the registry can expose, by actually registering it."""
    # Module-level metrics register at import time.
    import repro.distributed.engine  # noqa: F401
    import repro.dynamic.engine      # noqa: F401
    import repro.dynamic.resistance  # noqa: F401
    import repro.linalg.backends     # noqa: F401
    import repro.sampling.batch      # noqa: F401
    import repro.service.service     # noqa: F401

    from repro import obs
    from repro.dynamic import DynamicCFCM, DynamicGraph
    from repro.graph import generators
    from repro.service import AsyncCFCMService

    # Health gauges register at bind time; bind tiny real components so the
    # dynamically-built gauge names (f-strings in repro.obs.health) exist.
    graph = DynamicGraph(generators.cycle_graph(8))
    engine = DynamicCFCM(graph, seed=0)
    service = AsyncCFCMService(generators.cycle_graph(8), seed=0)
    unbinders = [obs.bind_engine_health(engine),
                 obs.bind_service_health(service)]
    try:
        names = {metric.name for metric in obs.REGISTRY.metrics()
                 if metric.name.startswith("repro_")}
    finally:
        for unbind in unbinders:
            unbind()
    return names


def documented_metric_names() -> set:
    if not DOCS.exists():
        return set()
    return set(NAME.findall(DOCS.read_text(encoding="utf-8")))


def main() -> int:
    if not DOCS.exists():
        print(f"[check_docs_metrics] missing {DOCS.relative_to(REPO)}")
        return 1
    registered = registered_metric_names()
    documented = documented_metric_names()
    missing = sorted(registered - documented)
    stale = sorted(documented - registered)
    if stale:
        print("[check_docs_metrics] warning: documented but not registered "
              "(prose-only or future names):")
        for name in stale:
            print(f"  {name}")
    if missing:
        print("[check_docs_metrics] registered metrics missing from "
              "docs/observability.md:")
        for name in missing:
            print(f"  {name}")
        return 1
    print(f"[check_docs_metrics] OK: all {len(registered)} registered "
          "repro_* metrics are documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
