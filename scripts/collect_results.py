#!/usr/bin/env python
"""Collect the measurements recorded in EXPERIMENTS.md.

Runs every experiment of the harness at the default ("small") scale with
budgets sized for a single-core laptop, writing plain-text reports and JSON
dumps into ``results/``.  This is the script used to produce the numbers in
EXPERIMENTS.md; re-running it regenerates them.
"""

from __future__ import annotations

import io
import json
import sys
import time
from contextlib import redirect_stdout
from pathlib import Path

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.table2 import run_table2

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def capture(name: str, func, **kwargs):
    """Run one experiment, teeing its report to results/<name>.txt and .json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    buffer = io.StringIO()
    start = time.perf_counter()
    with redirect_stdout(buffer):
        payload = func(**kwargs)
    elapsed = time.perf_counter() - start
    text = buffer.getvalue()
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, default=str), encoding="utf-8"
    )
    print(f"[collect] {name} finished in {elapsed:.1f}s", flush=True)
    return payload


def main() -> int:
    overall = time.perf_counter()
    capture("table2", run_table2, k=10, eps_values=(0.3, 0.2, 0.15), max_samples=48)
    capture("figure1", run_figure1, k_values=(1, 2, 3, 4, 5), eps=0.2, max_samples=160)
    capture("figure2", run_figure2, k_values=(4, 8, 12, 16, 20), eps=0.2, max_samples=48)
    capture("figure3", run_figure3, k_values=(4, 8, 12, 16, 20), eps=0.2, max_samples=48)
    capture("figure4", run_figure4, eps_values=(0.4, 0.35, 0.3, 0.25, 0.2, 0.15),
            k=8, max_samples=96)
    capture("figure5", run_figure5, eps_values=(0.4, 0.3, 0.2, 0.15), k=8,
            max_samples=96)
    print(f"[collect] all experiments done in {time.perf_counter() - overall:.1f}s",
          flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
