#!/usr/bin/env python
"""Lint: no ad-hoc timing in the library source tree.

Every module under ``src/repro`` must take its timestamps from
``repro.utils.timer.clock`` (the sanctioned monotonic clock, whose readings
feed the :mod:`repro.obs` histograms) instead of calling
``time.perf_counter`` directly.  Ad-hoc ``perf_counter`` calls produce
timings the observability layer never sees, which is exactly the drift this
check exists to stop.

Allowed exceptions:

* ``src/repro/obs/`` — the observability layer itself (span tracing needs
  the raw clock);
* ``src/repro/utils/timer.py`` — the module that defines ``clock``.

Benchmarks, tests, examples and scripts are out of scope on purpose: they
are measurement harnesses, not library code.

Exit status is non-zero when an offending line is found (CI gates on it)::

    python scripts/check_no_adhoc_timing.py
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
ALLOWED_FILES = {SRC / "utils" / "timer.py"}
ALLOWED_DIRS = (SRC / "obs",)
PATTERN = re.compile(r"\bperf_counter\b")


def find_offenders() -> list:
    """``path:line: source`` strings for every ad-hoc timing call."""
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED_FILES:
            continue
        if any(parent in ALLOWED_DIRS for parent in (path, *path.parents)):
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            if PATTERN.search(line):
                relative = path.relative_to(REPO)
                offenders.append(f"{relative}:{lineno}: {line.strip()}")
    return offenders


def main() -> int:
    offenders = find_offenders()
    if offenders:
        print("[check_no_adhoc_timing] ad-hoc perf_counter timing in library "
              "code; use repro.utils.timer.clock instead:")
        for offender in offenders:
            print(f"  {offender}")
        return 1
    print("[check_no_adhoc_timing] OK: src/repro times through "
          "repro.utils.timer.clock only")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
