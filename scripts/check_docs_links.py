#!/usr/bin/env python
"""Lint: relative links in README.md and docs/ must resolve.

Walks README.md and every Markdown file in ``docs/`` (reference dumps like
SNIPPETS.md quote third-party text and are out of scope), extracts inline
links (``[text](target)``), and fails when a relative target does not exist
on disk.  External links (``http(s)://``, ``mailto:``) and pure fragments
(``#section``) are skipped; a fragment on a relative link is checked
against the target file's headings.

Exit status is non-zero when a broken link is found (CI gates on it)::

    python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def heading_anchors(path: Path) -> set:
    """GitHub-style anchors of every Markdown heading in ``path``."""
    anchors = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip().lower()
        title = re.sub(r"[`*]", "", title)
        title = re.sub(r"[^\w\s-]", "", title)
        anchors.add(re.sub(r"\s+", "-", title.strip()))
    return anchors


def check_file(path: Path) -> list:
    """``file: target (reason)`` strings for every broken link in ``path``."""
    broken = []
    relative = path.relative_to(REPO)
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            broken.append(f"{relative}: {target} (missing file)")
        elif fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                broken.append(f"{relative}: {target} (missing heading)")
    return broken


def main() -> int:
    candidates = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    candidates = [path for path in candidates if path.exists()]
    broken = []
    for path in candidates:
        broken.extend(check_file(path))
    if broken:
        print("[check_docs_links] broken relative links:")
        for item in broken:
            print(f"  {item}")
        return 1
    print(f"[check_docs_links] OK: relative links resolve across "
          f"{len(candidates)} Markdown files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
